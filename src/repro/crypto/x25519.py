"""X25519 Diffie-Hellman key exchange (RFC 7748), pure Python.

Herd negotiates symmetric, ephemeral session keys using curve25519
(§3.2: "the implementation relies on the OpenSSL and curve25519
libraries").  This module implements the Montgomery-ladder scalar
multiplication over Curve25519 exactly as specified in RFC 7748 §5,
including scalar clamping and u-coordinate masking.

The implementation favours clarity over speed; it is fast enough for the
handshake counts exercised by the simulator and tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

P = 2 ** 255 - 19
A24 = 121665
_BASE_POINT_U = 9


def _clamp(scalar_bytes: bytes) -> int:
    """Clamp a 32-byte scalar per RFC 7748 §5 (decodeScalar25519)."""
    if len(scalar_bytes) != 32:
        raise ValueError("X25519 scalar must be exactly 32 bytes")
    b = bytearray(scalar_bytes)
    b[0] &= 248
    b[31] &= 127
    b[31] |= 64
    return int.from_bytes(bytes(b), "little")


def _decode_u(u_bytes: bytes) -> int:
    """Decode a 32-byte u-coordinate, masking the top bit per RFC 7748."""
    if len(u_bytes) != 32:
        raise ValueError("X25519 u-coordinate must be exactly 32 bytes")
    b = bytearray(u_bytes)
    b[31] &= 127
    return int.from_bytes(bytes(b), "little") % P


def _encode_u(u: int) -> bytes:
    return (u % P).to_bytes(32, "little")


def _cswap(swap: int, a: int, b: int) -> tuple:
    """Constant-time-style conditional swap (branchless arithmetic)."""
    mask = -swap  # 0 or all-ones in two's complement
    dummy = mask & (a ^ b)
    return a ^ dummy, b ^ dummy


def _ladder(k: int, u: int) -> int:
    """The Montgomery ladder from RFC 7748 §5."""
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        x2, x3 = _cswap(swap, x2, x3)
        z2, z3 = _cswap(swap, z2, z3)
        swap = k_t

        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = (da + cb) % P
        x3 = (x3 * x3) % P
        z3 = (da - cb) % P
        z3 = (z3 * z3) % P
        z3 = (z3 * x1) % P
        x2 = (aa * bb) % P
        z2 = (e * ((aa + A24 * e) % P)) % P

    x2, x3 = _cswap(swap, x2, x3)
    z2, z3 = _cswap(swap, z2, z3)
    return (x2 * pow(z2, P - 2, P)) % P


def x25519(scalar_bytes: bytes, u_bytes: bytes) -> bytes:
    """Compute X25519(k, u): scalar multiplication on Curve25519.

    Raises :class:`ValueError` if the result is the all-zero value,
    which indicates a low-order input point (RFC 7748 §6.1 check).
    """
    k = _clamp(scalar_bytes)
    u = _decode_u(u_bytes)
    result = _ladder(k, u)
    out = _encode_u(result)
    if out == b"\x00" * 32:
        raise ValueError("X25519 produced the all-zero shared secret "
                         "(low-order public key)")
    return out


def x25519_base(scalar_bytes: bytes) -> bytes:
    """Compute the public key for a private scalar (u = 9)."""
    k = _clamp(scalar_bytes)
    return _encode_u(_ladder(k, _BASE_POINT_U))


@dataclass(frozen=True)
class X25519PrivateKey:
    """An X25519 private key with its derived public key.

    Use :meth:`generate` for a fresh random key, or construct from
    32 bytes of secret material for deterministic tests.
    """

    private_bytes: bytes

    def __post_init__(self):
        if len(self.private_bytes) != 32:
            raise ValueError("X25519 private key must be 32 bytes")

    @classmethod
    def generate(cls, rng=None) -> "X25519PrivateKey":
        """Generate a fresh key; ``rng`` is an optional ``random.Random``
        used for reproducible simulations (defaults to ``os.urandom``)."""
        if rng is None:
            material = os.urandom(32)
        else:
            material = rng.getrandbits(256).to_bytes(32, "little")
        return cls(material)

    @property
    def public_bytes(self) -> bytes:
        return x25519_base(self.private_bytes)

    def exchange(self, peer_public_bytes: bytes) -> bytes:
        """Perform the Diffie-Hellman exchange with a peer public key."""
        return x25519(self.private_bytes, peer_public_bytes)

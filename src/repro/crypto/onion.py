"""Layered (onion) encryption for Herd circuits (§3.2).

"Layered encryption provides bitwise unlinkability, and hides content
and routing information from both individual mixes and eavesdroppers."
Clients build circuits incrementally, negotiating a symmetric key with
each mix on the circuit; a VoIP cell sent by the caller is wrapped in
one stream-cipher layer per hop, and each mix peels exactly one layer.

Cells are fixed-size (padded), so every layer's output has identical
length — a requirement for bitwise unlinkability, since a length change
at each hop would trivially correlate links.  An end-to-end MAC (keyed
with the innermost hop's ``*_mac`` key) detects tampering without
revealing anything to intermediate mixes.

Cell layout (cleartext, before any layer is applied)::

    2 bytes   payload length
    N bytes   payload
    pad       zeros up to CELL_PAYLOAD
    16 bytes  truncated HMAC-SHA256 over (length || payload)

Each hop applies ChaCha20 with its forward (or backward) key and a
nonce derived from the cell sequence number — identical sequence
numbering at every hop keeps the construction stateless for the mixes
beyond per-circuit counters.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.kdf import derive_keys, CIRCUIT_KEY_LABELS

#: Usable payload bytes per cell.  Sized to hold one 20 ms G.711 RTP
#: packet (160 bytes payload + 12 bytes RTP header) with headroom for
#: signaling.
CELL_PAYLOAD = 256
_LEN = struct.Struct("<H")
_MAC_LEN = 16
CELL_SIZE = _LEN.size + CELL_PAYLOAD + _MAC_LEN


@dataclass(frozen=True)
class HopKeys:
    """The four symmetric keys a client shares with one circuit hop."""

    forward: bytes
    backward: bytes
    forward_mac: bytes
    backward_mac: bytes

    @classmethod
    def from_shared_secret(cls, shared_secret: bytes,
                           context: bytes = b"") -> "HopKeys":
        keys = derive_keys(shared_secret, CIRCUIT_KEY_LABELS,
                           context=context)
        return cls(forward=keys["forward"], backward=keys["backward"],
                   forward_mac=keys["forward_mac"],
                   backward_mac=keys["backward_mac"])


class OnionCircuitKeys:
    """The client-side view of a circuit: an ordered list of hop keys.

    ``hops[0]`` is the first mix (closest to the client); ``hops[-1]``
    is the exit (rendezvous-facing) mix.
    """

    def __init__(self, hops: Sequence[HopKeys]):
        if not hops:
            raise ValueError("a circuit needs at least one hop")
        self.hops: List[HopKeys] = list(hops)

    def __len__(self) -> int:
        return len(self.hops)


def _nonce(direction: bytes, sequence: int) -> bytes:
    if len(direction) != 4:
        raise ValueError("direction tag must be 4 bytes")
    return direction + struct.pack("<Q", sequence)


def _mac(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()[:_MAC_LEN]


def encode_cell(payload: bytes, mac_key: bytes) -> bytes:
    """Pad ``payload`` into a fixed-size cell with an end-to-end MAC."""
    if len(payload) > CELL_PAYLOAD:
        raise ValueError(
            f"payload ({len(payload)} bytes) exceeds cell capacity "
            f"({CELL_PAYLOAD})")
    body = _LEN.pack(len(payload)) + payload.ljust(CELL_PAYLOAD, b"\x00")
    return body + _mac(mac_key, body)


def decode_cell(cell: bytes, mac_key: bytes) -> bytes:
    """Verify the end-to-end MAC and strip the padding."""
    if len(cell) != CELL_SIZE:
        raise ValueError("cell has the wrong size")
    body, tag = cell[:-_MAC_LEN], cell[-_MAC_LEN:]
    if not hmac.compare_digest(tag, _mac(mac_key, body)):
        raise ValueError("end-to-end cell MAC invalid")
    (length,) = _LEN.unpack(body[:_LEN.size])
    if length > CELL_PAYLOAD:
        raise ValueError("cell declares an impossible payload length")
    return body[_LEN.size:_LEN.size + length]


def wrap_onion(circuit: OnionCircuitKeys, payload: bytes,
               sequence: int) -> bytes:
    """Client → exit: encode a cell and apply all forward layers.

    Layers are applied innermost (exit) first, so the first mix peels
    the outermost layer.
    """
    cell = encode_cell(payload, circuit.hops[-1].forward_mac)
    for hop in reversed(circuit.hops):
        cell = chacha20_encrypt(hop.forward, _nonce(b"fwd\x00", sequence),
                                cell)
    return cell


def unwrap_layer(hop: HopKeys, cell: bytes, sequence: int,
                 forward: bool = True) -> bytes:
    """A mix peels (forward) or adds (backward) its single layer.

    ChaCha20 is an XOR stream, so peeling and adding are the same
    operation; the direction selects the key and nonce tag.
    """
    if forward:
        return chacha20_encrypt(hop.forward, _nonce(b"fwd\x00", sequence),
                                cell)
    return chacha20_encrypt(hop.backward, _nonce(b"bwd\x00", sequence),
                            cell)


def unwrap_onion(circuit: OnionCircuitKeys, cell: bytes,
                 sequence: int) -> bytes:
    """Peel every forward layer and verify the cell (exit-side view,
    used in tests to check the full path)."""
    for hop in circuit.hops:
        cell = unwrap_layer(hop, cell, sequence, forward=True)
    return decode_cell(cell, circuit.hops[-1].forward_mac)


def wrap_backward(circuit: OnionCircuitKeys, payload: bytes,
                  sequence: int) -> bytes:
    """Exit → client: each mix adds its backward layer in path order."""
    cell = encode_cell(payload, circuit.hops[-1].backward_mac)
    for hop in circuit.hops:
        cell = unwrap_layer(hop, cell, sequence, forward=False)
    return cell


def unwrap_backward(circuit: OnionCircuitKeys, cell: bytes,
                    sequence: int) -> bytes:
    """Client removes all backward layers and verifies the cell."""
    for hop in reversed(circuit.hops):
        cell = chacha20_encrypt(hop.backward, _nonce(b"bwd\x00", sequence),
                                cell)
    return decode_cell(cell, circuit.hops[-1].backward_mac)

"""HKDF-SHA256 key derivation (RFC 5869) and Herd key schedules.

After an X25519 exchange, both DTLS links (hop-by-hop, §3.2) and circuit
hops (layered, §3.2) derive directional symmetric keys from the shared
secret.  This module provides the extract-and-expand KDF plus the
specific key schedules used elsewhere in the package.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC-SHA256(salt, IKM)."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF-Expand output too long")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(prk, block + info + bytes([counter]),
                         hashlib.sha256).digest()
        okm += block
        counter += 1
    return okm[:length]


def hkdf_sha256(ikm: bytes, salt: bytes = b"", info: bytes = b"",
                length: int = 32) -> bytes:
    """One-shot HKDF-SHA256 (extract then expand)."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


#: Labels for the directional keys of a DTLS-like link.
LINK_KEY_LABELS = ("client_write", "server_write")

#: Labels for the keys a circuit hop derives: forward/backward stream
#: keys plus forward/backward integrity keys.
CIRCUIT_KEY_LABELS = ("forward", "backward", "forward_mac", "backward_mac")


def derive_keys(shared_secret: bytes, labels, context: bytes = b"",
                length: int = 32) -> Dict[str, bytes]:
    """Derive one key per label from a DH shared secret.

    Returns a dict mapping each label to ``length`` bytes of independent
    keying material.  ``context`` binds the derivation to a transcript
    (e.g., both public keys of the handshake).
    """
    prk = hkdf_extract(b"herd-v1", shared_secret)
    return {
        label: hkdf_expand(prk, context + b"|" + label.encode("ascii"),
                           length)
        for label in labels
    }

"""PKI: root of trust, certificates, and signed descriptors.

Herd §3 assumes "a PKI that provides a root of trust to authenticate
legitimate mixes and zone directories", with the root certificate
embedded in the client software.  Clients joining a zone "obtain a
signed certificate from a zone directory that contains a client ID and
the zone's signature" (§3.3), and participants publish *descriptors*
containing their public keys ``l`` and ``s`` in the zone directory
(§3.2).

This module implements those three artefacts:

* :class:`RootOfTrust` — signs zone-directory certificates.
* :class:`Certificate` — a signed binding of (subject id, role, zone,
  public keys); chains up to the root.
* :class:`Descriptor` — the published record of a participant's public
  keys, signed with the participant's identity key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.ed25519 import SigningKey, VerifyKey
from repro.crypto.keys import IdentityKeyPair


def _encode_field(tag: str, value: bytes) -> bytes:
    tag_b = tag.encode("ascii")
    return (len(tag_b).to_bytes(2, "big") + tag_b
            + len(value).to_bytes(4, "big") + value)


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject's identity to a zone and role.

    ``role`` is one of ``"zone-directory"``, ``"mix"``, ``"superpeer"``,
    ``"client"``.  The certificate is signed by the issuer (the root for
    zone directories; the zone directory for everything else).
    """

    subject_id: str
    role: str
    zone_id: str
    identity_public: bytes
    short_term_public: bytes
    issuer_public: bytes
    signature: bytes

    ROLES = ("zone-directory", "mix", "superpeer", "client")

    def to_signing_bytes(self) -> bytes:
        """The canonical byte string covered by the signature."""
        return b"herd-cert-v1" + b"".join([
            _encode_field("subject", self.subject_id.encode("utf-8")),
            _encode_field("role", self.role.encode("ascii")),
            _encode_field("zone", self.zone_id.encode("utf-8")),
            _encode_field("l", self.identity_public),
            _encode_field("s", self.short_term_public),
            _encode_field("issuer", self.issuer_public),
        ])

    def verify(self, issuer_key: Optional[VerifyKey] = None) -> bool:
        """Check the signature (against ``issuer_key`` if provided, else
        against the embedded issuer public key)."""
        key = issuer_key or VerifyKey(self.issuer_public)
        if issuer_key is not None and \
                issuer_key.public_bytes != self.issuer_public:
            return False
        return key.verify(self.to_signing_bytes(), self.signature)


def issue_certificate(issuer: SigningKey, subject_id: str, role: str,
                      zone_id: str, identity_public: bytes,
                      short_term_public: bytes) -> Certificate:
    """Create and sign a certificate for a subject."""
    if role not in Certificate.ROLES:
        raise ValueError(f"unknown role {role!r}")
    unsigned = Certificate(
        subject_id=subject_id,
        role=role,
        zone_id=zone_id,
        identity_public=identity_public,
        short_term_public=short_term_public,
        issuer_public=issuer.verify_key.public_bytes,
        signature=b"\x00" * 64,
    )
    signature = issuer.sign(unsigned.to_signing_bytes())
    return Certificate(
        subject_id=subject_id,
        role=role,
        zone_id=zone_id,
        identity_public=identity_public,
        short_term_public=short_term_public,
        issuer_public=issuer.verify_key.public_bytes,
        signature=signature,
    )


@dataclass(frozen=True)
class Descriptor:
    """A participant's published descriptor: public keys ``l`` and ``s``
    plus contact information, signed with the identity key ``l``."""

    subject_id: str
    zone_id: str
    identity_public: bytes
    short_term_public: bytes
    address: str
    signature: bytes

    def to_signing_bytes(self) -> bytes:
        return b"herd-desc-v1" + b"".join([
            _encode_field("subject", self.subject_id.encode("utf-8")),
            _encode_field("zone", self.zone_id.encode("utf-8")),
            _encode_field("l", self.identity_public),
            _encode_field("s", self.short_term_public),
            _encode_field("addr", self.address.encode("utf-8")),
        ])

    def verify(self) -> bool:
        return VerifyKey(self.identity_public).verify(
            self.to_signing_bytes(), self.signature)


def make_descriptor(identity: IdentityKeyPair, subject_id: str,
                    zone_id: str, short_term_public: bytes,
                    address: str) -> Descriptor:
    """Build and self-sign a descriptor for a participant."""
    unsigned = Descriptor(
        subject_id=subject_id,
        zone_id=zone_id,
        identity_public=identity.public_bytes,
        short_term_public=short_term_public,
        address=address,
        signature=b"\x00" * 64,
    )
    return Descriptor(
        subject_id=subject_id,
        zone_id=zone_id,
        identity_public=identity.public_bytes,
        short_term_public=short_term_public,
        address=address,
        signature=identity.sign(unsigned.to_signing_bytes()),
    )


class RootOfTrust:
    """The root key embedded in the Herd client software.

    The root signs one certificate per zone directory; everything else
    chains through the directories.  :meth:`verify_chain` validates a
    leaf certificate against its issuing directory certificate and the
    root key.
    """

    def __init__(self, rng=None):
        self._key = SigningKey.generate(rng)
        self._zone_certs = {}

    @property
    def public_key(self) -> VerifyKey:
        return self._key.verify_key

    def certify_zone_directory(self, zone_id: str, identity_public: bytes,
                               short_term_public: bytes) -> Certificate:
        cert = issue_certificate(
            self._key, subject_id=f"directory:{zone_id}",
            role="zone-directory", zone_id=zone_id,
            identity_public=identity_public,
            short_term_public=short_term_public)
        self._zone_certs[zone_id] = cert
        return cert

    def zone_certificate(self, zone_id: str) -> Optional[Certificate]:
        return self._zone_certs.get(zone_id)

    def verify_chain(self, leaf: Certificate,
                     directory_cert: Certificate) -> bool:
        """Validate leaf → directory → root."""
        if directory_cert.role != "zone-directory":
            return False
        if leaf.zone_id != directory_cert.zone_id:
            return False
        if not directory_cert.verify(self.public_key):
            return False
        return leaf.verify(VerifyKey(directory_cert.identity_public))

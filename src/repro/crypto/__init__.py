"""Cryptographic substrate for the Herd reproduction.

The paper's prototype relies on OpenSSL and curve25519 for TLS and
public-key cryptography.  This package provides a from-scratch,
pure-Python equivalent that interoperates only with itself:

* :mod:`repro.crypto.x25519` — RFC 7748 Curve25519 Diffie-Hellman.
* :mod:`repro.crypto.ed25519` — RFC 8032 Ed25519 signatures.
* :mod:`repro.crypto.chacha20` — RFC 8439 ChaCha20 and the
  ChaCha20-Poly1305 AEAD construction.
* :mod:`repro.crypto.kdf` — HKDF-SHA256 key derivation.
* :mod:`repro.crypto.keys` — long-term identity and short-term circuit
  key pairs, as described in Herd §3.2.
* :mod:`repro.crypto.pki` — root of trust, zone certificates, and signed
  descriptors (Herd §3.3, §3.5).
* :mod:`repro.crypto.dtls` — a DTLS-like authenticated datagram channel
  with perfect forward secrecy (hop-by-hop encryption).
* :mod:`repro.crypto.onion` — layered (onion) encryption for circuits
  (bitwise unlinkability, invariant I1).

None of this code is intended for real-world security use; it exists so
that the reproduced system actually exercises the cryptographic code
paths the paper describes (key negotiation, layer peeling, predictable
chaff ciphertext for XOR decoding at the mix).
"""

from repro.crypto.x25519 import X25519PrivateKey, x25519
from repro.crypto.ed25519 import SigningKey, VerifyKey
from repro.crypto.chacha20 import (
    chacha20_encrypt,
    chacha20_keystream,
    ChaCha20Poly1305,
)
from repro.crypto.kdf import hkdf_sha256, derive_keys
from repro.crypto.keys import IdentityKeyPair, ShortTermKeyPair, SessionKey
from repro.crypto.pki import Certificate, RootOfTrust, Descriptor
from repro.crypto.dtls import DTLSLink, HandshakeError
from repro.crypto.onion import OnionCircuitKeys, wrap_onion, unwrap_layer

__all__ = [
    "X25519PrivateKey",
    "x25519",
    "SigningKey",
    "VerifyKey",
    "chacha20_encrypt",
    "chacha20_keystream",
    "ChaCha20Poly1305",
    "hkdf_sha256",
    "derive_keys",
    "IdentityKeyPair",
    "ShortTermKeyPair",
    "SessionKey",
    "Certificate",
    "RootOfTrust",
    "Descriptor",
    "DTLSLink",
    "HandshakeError",
    "OnionCircuitKeys",
    "wrap_onion",
    "unwrap_layer",
]

"""ChaCha20 stream cipher and ChaCha20-Poly1305 AEAD (RFC 8439).

Herd pads all links with encrypted chaff whose ciphertext must look
uniformly random to an observer, while remaining *predictable to the
mix* that shares the symmetric key (§3.6.1: "the ciphertext of the
chaff packets from the idle clients is predictable to the mix").  A
stream cipher in counter mode gives exactly that property, and is what
the XOR network-coding decode at the mix relies on.

This module implements:

* the ChaCha20 block function and keystream generator,
* ``chacha20_encrypt`` (pure XOR stream encryption), and
* :class:`ChaCha20Poly1305`, the AEAD construction used by the
  DTLS-like record layer for hop-by-hop authenticated encryption.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF


def _rotl32(v: int, c: int) -> int:
    return ((v << c) & _MASK32) | (v >> (32 - c))


def _quarter_round(state, a, b, c, d):
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """The ChaCha20 block function (RFC 8439 §2.3): 64 bytes of keystream."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 2 ** 32:
        raise ValueError("ChaCha20 block counter must fit in 32 bits")

    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8I", key))
    state.append(counter)
    state.extend(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16I", *out)


def chacha20_keystream(key: bytes, nonce: bytes, length: int,
                       counter: int = 0) -> bytes:
    """Generate ``length`` bytes of ChaCha20 keystream."""
    if length < 0:
        raise ValueError("keystream length must be non-negative")
    blocks = []
    produced = 0
    while produced < length:
        blocks.append(chacha20_block(key, counter, nonce))
        counter += 1
        produced += 64
    return b"".join(blocks)[:length]


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                     counter: int = 1) -> bytes:
    """Encrypt (or decrypt — the operation is symmetric) with ChaCha20."""
    stream = chacha20_keystream(key, nonce, len(plaintext), counter)
    return bytes(p ^ s for p, s in zip(plaintext, stream))


# --------------------------------------------------------------------------
# Poly1305 one-time authenticator (RFC 8439 §2.5)
# --------------------------------------------------------------------------

_P1305 = (1 << 130) - 5


def poly1305_mac(msg: bytes, key: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``msg`` under a 32-byte key."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little")
    r &= 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for i in range(0, len(msg), 16):
        chunk = msg[i:i + 16]
        n = int.from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        acc = (acc + n) * r % _P1305
    acc = (acc + s) % (1 << 128)
    return acc.to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """The AEAD_CHACHA20_POLY1305 construction (RFC 8439 §2.8).

    Provides ``encrypt(nonce, plaintext, aad)`` returning
    ciphertext||tag, and ``decrypt`` raising :class:`ValueError` on
    authentication failure.
    """

    TAG_LEN = 16

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ValueError("AEAD key must be 32 bytes")
        self._key = key

    def _poly_key(self, nonce: bytes) -> bytes:
        return chacha20_block(self._key, 0, nonce)[:32]

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac_data = (aad + _pad16(aad)
                    + ciphertext + _pad16(ciphertext)
                    + struct.pack("<QQ", len(aad), len(ciphertext)))
        return poly1305_mac(mac_data, self._poly_key(nonce))

    def encrypt(self, nonce: bytes, plaintext: bytes,
                aad: bytes = b"") -> bytes:
        ciphertext = chacha20_encrypt(self._key, nonce, plaintext, counter=1)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        if len(data) < self.TAG_LEN:
            raise ValueError("ciphertext shorter than the AEAD tag")
        ciphertext, tag = data[:-self.TAG_LEN], data[-self.TAG_LEN:]
        expected = self._tag(nonce, ciphertext, aad)
        if not _const_eq(tag, expected):
            raise ValueError("AEAD authentication failed")
        return chacha20_encrypt(self._key, nonce, ciphertext, counter=1)


def _const_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0

"""Herd participant key material (§3.2).

"Mixes, SPs, and clients maintain a long-term identity key pair *l* used
to sign DTLS certificates and their descriptors, and a short-term key
pair *s* used to set up circuits and negotiate symmetric, ephemeral
session keys *e*."

* :class:`IdentityKeyPair` — the long-term Ed25519 pair ``l``.
* :class:`ShortTermKeyPair` — the medium-term X25519 pair ``s``.
* :class:`SessionKey` — a symmetric ephemeral key ``e`` with its nonce
  schedule, as used on DTLS links and circuit layers.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.crypto.ed25519 import SigningKey, VerifyKey
from repro.crypto.x25519 import X25519PrivateKey


@dataclass(frozen=True)
class IdentityKeyPair:
    """Long-term identity key pair ``l`` (Ed25519)."""

    signing_key: SigningKey

    @classmethod
    def generate(cls, rng=None) -> "IdentityKeyPair":
        return cls(SigningKey.generate(rng))

    @property
    def verify_key(self) -> VerifyKey:
        return self.signing_key.verify_key

    @property
    def public_bytes(self) -> bytes:
        return self.verify_key.public_bytes

    def sign(self, message: bytes) -> bytes:
        return self.signing_key.sign(message)


@dataclass(frozen=True)
class ShortTermKeyPair:
    """Short-term circuit-setup key pair ``s`` (X25519)."""

    dh_key: X25519PrivateKey

    @classmethod
    def generate(cls, rng=None) -> "ShortTermKeyPair":
        return cls(X25519PrivateKey.generate(rng))

    @property
    def public_bytes(self) -> bytes:
        return self.dh_key.public_bytes

    def exchange(self, peer_public_bytes: bytes) -> bytes:
        return self.dh_key.exchange(peer_public_bytes)


@dataclass
class SessionKey:
    """A symmetric ephemeral session key ``e`` with a nonce counter.

    Nonces are a 4-byte direction/channel prefix plus a 64-bit counter,
    so a single key can encrypt a long-lived packet stream without nonce
    reuse.  ``next_nonce`` advances the counter; ``nonce_for`` computes
    the nonce for an explicit sequence number (needed by the mix to
    predict idle clients' chaff ciphertext, §3.6.1).
    """

    key: bytes
    prefix: bytes = b"\x00" * 4
    counter: int = field(default=0)

    def __post_init__(self):
        if len(self.key) != 32:
            raise ValueError("session key must be 32 bytes")
        if len(self.prefix) != 4:
            raise ValueError("nonce prefix must be 4 bytes")

    @classmethod
    def generate(cls, rng=None, prefix: bytes = b"\x00" * 4) -> "SessionKey":
        if rng is None:
            material = os.urandom(32)
        else:
            material = rng.getrandbits(256).to_bytes(32, "little")
        return cls(material, prefix)

    def nonce_for(self, sequence: int) -> bytes:
        """The 12-byte nonce used for packet number ``sequence``."""
        if not 0 <= sequence < 2 ** 64:
            raise ValueError("sequence number out of range")
        return self.prefix + struct.pack("<Q", sequence)

    def next_nonce(self) -> bytes:
        nonce = self.nonce_for(self.counter)
        self.counter += 1
        return nonce

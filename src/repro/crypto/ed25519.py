"""Ed25519 signatures (RFC 8032), pure Python.

Herd participants hold a long-term identity key pair ``l`` "used to sign
DTLS certificates and their descriptors" (§3.2).  This module provides
the signature scheme for those identity keys: Ed25519 over
edwards25519, following RFC 8032 §5.1 (point compression, SHA-512
hashing, cofactored verification via the standard equation).

Like the rest of :mod:`repro.crypto`, this is a clear, from-scratch
implementation intended for correctness within the reproduction, not for
production hardening.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

P = 2 ** 255 - 19
L = 2 ** 252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P
_I = pow(2, (P - 1) // 4, P)  # sqrt(-1)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, P - 2, P)


def _recover_x(y: int, sign: int) -> int:
    """Recover the x-coordinate from y and the sign bit (RFC 8032 §5.1.3)."""
    if y >= P:
        raise ValueError("invalid point encoding: y >= p")
    x2 = (y * y - 1) * _inv(D * y * y + 1) % P
    if x2 == 0:
        if sign:
            raise ValueError("invalid point encoding: x=0 with sign bit")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * _I % P
    if (x * x - x2) % P != 0:
        raise ValueError("invalid point encoding: not on curve")
    if (x & 1) != sign:
        x = P - x
    return x


# Points are extended homogeneous coordinates (X, Y, Z, T), x = X/Z,
# y = Y/Z, x*y = T/Z.
_IDENT = (0, 1, 1, 0)


def _point_add(p, q):
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    d = 2 * z1 * z2 % P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_mul(s: int, p):
    q = _IDENT
    while s > 0:
        if s & 1:
            q = _point_add(q, p)
        p = _point_add(p, p)
        s >>= 1
    return q


def _point_equal(p, q) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def _point_compress(p) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x = x * zinv % P
    y = y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(s: bytes):
    if len(s) != 32:
        raise ValueError("point encoding must be 32 bytes")
    val = int.from_bytes(s, "little")
    sign = val >> 255
    y = val & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % P)


_BY = 4 * _inv(5) % P
_BX = _recover_x(_BY, 0)
_B = (_BX, _BY, 1, _BX * _BY % P)


def _secret_expand(secret: bytes):
    if len(secret) != 32:
        raise ValueError("Ed25519 seed must be 32 bytes")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def _public_key(secret: bytes) -> bytes:
    a, _ = _secret_expand(secret)
    return _point_compress(_point_mul(a, _B))


def _sign(secret: bytes, msg: bytes) -> bytes:
    a, prefix = _secret_expand(secret)
    pub = _point_compress(_point_mul(a, _B))
    r = int.from_bytes(_sha512(prefix + msg), "little") % L
    big_r = _point_compress(_point_mul(r, _B))
    h = int.from_bytes(_sha512(big_r + pub + msg), "little") % L
    s = (r + h * a) % L
    return big_r + s.to_bytes(32, "little")


def _verify(public: bytes, msg: bytes, signature: bytes) -> bool:
    if len(public) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + public + msg), "little") % L
    lhs = _point_mul(s, _B)
    rhs = _point_add(r_point, _point_mul(h, a_point))
    return _point_equal(lhs, rhs)


@dataclass(frozen=True)
class VerifyKey:
    """An Ed25519 public (verification) key."""

    public_bytes: bytes

    def __post_init__(self):
        if len(self.public_bytes) != 32:
            raise ValueError("Ed25519 public key must be 32 bytes")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is valid for ``message``."""
        return _verify(self.public_bytes, message, signature)


@dataclass(frozen=True)
class SigningKey:
    """An Ed25519 private (signing) key derived from a 32-byte seed."""

    seed: bytes

    def __post_init__(self):
        if len(self.seed) != 32:
            raise ValueError("Ed25519 seed must be 32 bytes")

    @classmethod
    def generate(cls, rng=None) -> "SigningKey":
        """Generate a fresh key; ``rng`` (``random.Random``) makes it
        deterministic for simulations."""
        if rng is None:
            material = os.urandom(32)
        else:
            material = rng.getrandbits(256).to_bytes(32, "little")
        return cls(material)

    @property
    def verify_key(self) -> VerifyKey:
        return VerifyKey(_public_key(self.seed))

    def sign(self, message: bytes) -> bytes:
        """Produce a 64-byte detached signature over ``message``."""
        return _sign(self.seed, message)

"""The Drac baseline model (§4.1.1, §4.1.5, §4.3).

"Drac maintains one chaffing connection for each link within a social
network, thus hiding the call patterns within the social network.  As a
result, Drac's bandwidth requirements are proportional to the degree of
nodes in the social network, i.e., the size of users' contact lists."

Anonymity: "the effective size of the anonymity sets in Drac correspond
to the number of clients that can be reached within H hops in the
social network".  H=1 is measured empirically from the degree
distribution; H≥2 is estimated as ``median_degree ** H``, exactly the
paper's methodology.

Latency: calls route peer-to-peer over the social graph, crossing H+1
last-mile links; H=0 (direct calls between contacts) is what Fig. 7
measures with ping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.datasets import DatasetSpec
from repro.workload.social import degree_sequence, estimated_anonymity_set


@dataclass
class DracAnonymity:
    """Fig. 4 statistics for one dataset and hop count."""

    dataset: str
    hops: int
    median: float
    p10: float
    p90: float


class DracModel:
    """Drac over a dataset's social graph."""

    name = "Drac"

    def __init__(self, spec: DatasetSpec, n_users: Optional[int] = None,
                 rng: Optional[random.Random] = None):
        self.spec = spec
        self.n_users = n_users or spec.default_sim_users
        self.rng = rng or random.Random(0)
        self._degrees = degree_sequence(
            self.n_users, spec.median_degree, spec.max_degree,
            rng=self.rng)

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees

    # -- bandwidth (Fig. 5) ---------------------------------------------------

    def client_bandwidths_kbps(self,
                               unit_rate_kbps: float = 8.0) -> np.ndarray:
        """Per-client chaffing bandwidth: degree × unit rate."""
        return self._degrees * unit_rate_kbps

    def bandwidth_percentile_kbps(self, q: float,
                                  unit_rate_kbps: float = 8.0) -> float:
        return float(np.percentile(
            self.client_bandwidths_kbps(unit_rate_kbps), q))

    # -- anonymity (Fig. 4) ----------------------------------------------------

    def anonymity(self, hops: int) -> DracAnonymity:
        """Anonymity-set statistics at H hops.

        H=1: empirical degree distribution.  H≥2: the paper's estimate
        (percentile of degree) ** H.  Like the paper, the estimate is
        NOT capped at the dataset's sample size — Fig. 4 reports 40M
        for the 1,165-user Facebook dataset at H=3, an extrapolation to
        the real network's reachable population.
        """
        if hops < 1:
            raise ValueError("hops must be at least 1 (H=0 means a "
                             "direct call: anonymity set of 1)")
        if hops == 1:
            med = float(np.median(self._degrees))
            p10 = float(np.percentile(self._degrees, 10))
            p90 = float(np.percentile(self._degrees, 90))
        else:
            med = estimated_anonymity_set(
                int(np.median(self._degrees)), hops)
            p10 = float(np.percentile(self._degrees, 10)) ** hops
            p90 = float(np.percentile(self._degrees, 90)) ** hops
        return DracAnonymity(dataset=self.spec.name, hops=hops,
                             median=med, p10=p10, p90=p90)

    # -- latency (Fig. 7) ---------------------------------------------------------

    def one_way_delay_ms(self, hops: int, last_mile_owd_ms: float = 20.0,
                         backbone_owd_ms: float = 45.0) -> float:
        """One-way delay of a call routed over ``hops`` social hops:
        every hop traverses two last-mile links plus a backbone path.
        H=0 is a direct call (one network path)."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        paths = hops + 1
        return paths * (2 * last_mile_owd_ms + backbone_owd_ms)

    def chaffing_connections(self, client: int) -> int:
        """Connections a client maintains: its social degree (vs Herd's
        constant k)."""
        return int(self._degrees[client])

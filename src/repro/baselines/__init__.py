"""Baseline system models the paper compares Herd against (§4.1.1).

* :mod:`repro.baselines.tor` — "Tor does not employ chaffing and so
  does not offer any resistance to traffic analysis."  Exposes the
  per-call flow observables the intersection attack consumes, plus the
  2–4 s circuit delay model the introduction cites.
* :mod:`repro.baselines.drac` — "Drac maintains one chaffing connection
  for each link within a social network [...] Drac's bandwidth
  requirements are proportional to the degree of nodes in the social
  network."
"""

from repro.baselines.tor import TorModel
from repro.baselines.drac import DracModel

__all__ = ["TorModel", "DracModel"]

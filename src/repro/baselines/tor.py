"""The Tor baseline model (§4.1.1, §4.1.4).

Tor provides onion routing without chaffing: an adversary observing
ingress and egress links sees each call as a flow with visible start
and end times.  The model therefore

* exposes the *observable event trace* — identical to the call trace —
  that the intersection attack consumes,
* computes per-call anonymity sets via that attack,
* models circuit round-trip delay: "Tor typically incurs round trip
  delays between 2–4 seconds on established, sender-anonymous circuits
  because of random proxy selection and high-latency connections".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.attacks.intersection import (
    IntersectionAttackResult,
    intersection_attack,
)
from repro.workload.cdr import CallTrace


class TorModel:
    """Tor as a VoIP carrier, for comparison purposes."""

    name = "Tor"
    #: Published round-trip delay range on sender-anonymous circuits.
    RTT_RANGE_S = (2.0, 4.0)

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    def observable_trace(self, trace: CallTrace) -> CallTrace:
        """Without chaffing, the adversary observes every call's flow
        start/end directly: the observable trace IS the call trace."""
        return trace

    def run_intersection_attack(self, trace: CallTrace,
                                bin_width: float = 1.0
                                ) -> IntersectionAttackResult:
        return intersection_attack(self.observable_trace(trace),
                                   bin_width)

    def circuit_rtt(self) -> float:
        """A sampled circuit round-trip time (seconds)."""
        lo, hi = self.RTT_RANGE_S
        return self.rng.uniform(lo, hi)

    def one_way_delay_ms(self) -> float:
        return self.circuit_rtt() * 1000.0 / 2.0

    def client_bandwidth_kbps(self, unit_rate_kbps: float = 8.0) -> float:
        """No chaffing: bandwidth equals the payload rate during calls
        (and zero otherwise)."""
        return unit_rate_kbps

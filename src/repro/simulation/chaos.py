"""Chaos scenarios: fault plans replayed against a live deployment.

The acceptance scenario of the Herd failure model (§3.1, §3.5, §3.6.4)
in one runnable function: a live zone carries real calls at codec-frame
granularity while a :class:`~repro.faults.plan.FaultPlan` kills a mix
(orphaning direct clients, who re-join through surviving mixes with
exponential backoff) and kills or degrades-until-blacklisted an SP
mid-call (whose active call legs fail over to surviving channels and
resume).  :func:`run_chaos` returns a :class:`ChaosReport` with the
structured fault timeline, per-client re-join latencies, and per-leg
failover outcomes — and two runs with the same seed and plan produce
identical reports (the determinism regression the tests assert).
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.blacklist import SPMonitor
from repro.core.callmanager import CallState, FailoverRecord
from repro.core.join import join_zone
from repro.core.retry import BackoffPolicy, LoopRetry
from repro.faults.injector import FaultInjector, TimelineEntry
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.netsim.engine import EventLoop
from repro.simulation.churn import fail_superpeer
from repro.simulation.live import LiveZone
from repro.simulation.testbed import build_testbed

LIVE_ZONE = "zone-live"
CTL_ZONE = "zone-ctl"


@dataclass
class ChaosConfig:
    """Knobs of the chaos scenario (defaults match the acceptance
    scenario: one mix crash + one SP loss mid-call)."""

    seed: int = 20150817
    n_clients: int = 12
    n_channels: int = 6
    n_sps: int = 2
    k: int = 3
    n_direct_clients: int = 6
    round_interval_s: float = 0.02
    horizon_s: float = 12.0
    call_pairs: int = 1
    call_start_s: float = 0.5
    plan: Optional[FaultPlan] = None
    rejoin_policy: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        base_delay_s=0.25, multiplier=2.0, max_delay_s=2.0,
        max_attempts=8, jitter=0.1))
    #: SPMonitor sampling cadence for degradation faults.
    sample_interval_s: float = 0.25
    #: Zone execution engine: ``"event"`` (per-channel round path) or
    #: ``"batch"`` (round-synchronous batch entry points).  The chaos
    #: report's determinism key is identical under both.
    execution: str = "event"
    #: Deprecated alias of ``n_clients`` (the repro.api rename unified
    #: the knob name across LiveZone / SimConfig / ChaosConfig).
    n_live_clients: InitVar[Optional[int]] = None

    def __post_init__(self, n_live_clients: Optional[int]) -> None:
        if n_live_clients is not None:
            warnings.warn(
                "ChaosConfig(n_live_clients=...) is deprecated; use "
                "n_clients=...", DeprecationWarning, stacklevel=3)
            self.n_clients = n_live_clients
        if self.execution not in ("event", "batch"):
            raise ValueError("execution must be 'event' or 'batch', "
                             f"not {self.execution!r}")


def default_plan() -> FaultPlan:
    """Mix crash (unclean: 1 s detection delay, recovers at +5 s) plus
    an SP crash mid-call."""
    return FaultPlan([
        FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0,
                  target=f"{CTL_ZONE}/mix-0", duration_s=5.0,
                  detection_delay_s=1.0),
        FaultSpec(kind=FaultKind.SP_CRASH, at_s=3.0,
                  target=f"{LIVE_ZONE}/sp-1"),
    ])


def blacklist_plan() -> FaultPlan:
    """Same mix crash, but the SP is not killed — its link degrades
    until the mix's :class:`SPMonitor` blacklists it, which triggers
    the same mid-call failover path."""
    return FaultPlan([
        FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0,
                  target=f"{CTL_ZONE}/mix-0", duration_s=5.0,
                  detection_delay_s=1.0),
        FaultSpec(kind=FaultKind.LINK_DEGRADE, at_s=2.0,
                  target=f"{LIVE_ZONE}/sp-1", duration_s=4.0,
                  loss=0.30, jitter_ms=80.0),
    ])


@dataclass
class RejoinStats:
    """One orphaned client's backoff-driven re-join."""

    client_id: str
    orphaned_at_s: float
    rejoined_at_s: Optional[float]
    attempts: int
    backoff_s: float

    @property
    def latency_s(self) -> Optional[float]:
        if self.rejoined_at_s is None:
            return None
        return self.rejoined_at_s - self.orphaned_at_s


@dataclass
class ChaosReport:
    """Everything a chaos run produced."""

    plan_signature: str
    timeline: List[TimelineEntry]
    events_processed: int
    rounds_run: int
    call_legs_established: int
    failovers: List[FailoverRecord]
    rejoins: List[RejoinStats]
    #: client id → voice cells received *after* its leg failed over.
    post_failover_voice: Dict[str, int]
    blacklisted_sps: Tuple[str, ...]

    @property
    def survived_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if r.survived]

    @property
    def dropped_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if not r.survived]

    @property
    def call_survival_rate(self) -> float:
        if not self.failovers:
            return 1.0
        return len(self.survived_failovers) / len(self.failovers)

    @property
    def all_rejoined(self) -> bool:
        return bool(self.rejoins) and \
            all(r.rejoined_at_s is not None for r in self.rejoins)

    @property
    def mid_call_failover_demonstrated(self) -> bool:
        """At least one leg re-allocated to a surviving channel AND
        received voice after the switch — the call really resumed."""
        return any(self.post_failover_voice.get(cid, 0) > 0
                   for cid in self.post_failover_voice)

    def determinism_key(self) -> Tuple:
        """Everything that must match bit-for-bit between two runs with
        the same seed and plan.  Deliberately excludes process-global
        counters (numeric ids, call ids)."""
        return (
            self.plan_signature,
            tuple((e.time_s, e.action, e.kind, e.target, e.detail)
                  for e in self.timeline),
            self.events_processed,
            self.rounds_run,
            self.call_legs_established,
            tuple(sorted(self.post_failover_voice.items())),
            tuple((r.client_id, round(r.orphaned_at_s, 9),
                   None if r.rejoined_at_s is None
                   else round(r.rejoined_at_s, 9), r.attempts)
                  for r in sorted(self.rejoins,
                                  key=lambda r: r.client_id)),
            self.blacklisted_sps,
        )


def run_chaos(config: Optional[ChaosConfig] = None, *,
              seed: Optional[int] = None,
              n_clients: Optional[int] = None,
              n_channels: Optional[int] = None,
              scope=None) -> ChaosReport:
    """Run one chaos scenario end to end.

    The keyword overrides (``seed``, ``n_clients``, ``n_channels``)
    are conveniences over ``config`` for the common knobs; ``scope``
    is an optional :class:`repro.obs.instrument.Herdscope` that gets
    wired into the loop, injector, and live zone so the run produces
    metrics and traces.
    """
    cfg = config or ChaosConfig()
    overrides = {name: value
                 for name, value in (("seed", seed),
                                     ("n_clients", n_clients),
                                     ("n_channels", n_channels))
                 if value is not None}
    if overrides:
        cfg = replace(cfg, **overrides)
    plan = cfg.plan or default_plan()
    loop = EventLoop(seed=cfg.seed)
    bed = build_testbed([(LIVE_ZONE, "dc-live", 1),
                         (CTL_ZONE, "dc-ctl", 2)], seed=cfg.seed)
    zone = LiveZone(n_clients=cfg.n_clients,
                    n_channels=cfg.n_channels, k=cfg.k,
                    n_sps=cfg.n_sps, seed=cfg.seed, bed=bed,
                    zone_id=LIVE_ZONE, client_prefix="live",
                    execution=cfg.execution)
    for i in range(cfg.n_direct_clients):
        bed.add_client(f"ctl-{i}", CTL_ZONE)

    monitor = SPMonitor()
    injector = FaultInjector(bed, loop, monitor=monitor,
                             sp_full_leave=False,
                             sample_interval_s=cfg.sample_interval_s)
    if scope is not None:
        scope.attach_loop(loop)
        scope.attach_live_zone(zone)
        scope.attach_injector(injector)

    rejoins: List[RejoinStats] = []
    post_failover_voice: Dict[str, int] = {}
    voice_snapshot: Dict[str, int] = {}

    def note_failovers(records: List[FailoverRecord]) -> None:
        for record in records:
            live = zone._by_numeric.get(record.numeric_id)
            client_id = live.client.client_id if live else "?"
            if record.survived:
                injector.record(
                    "failover", "call", client_id,
                    f"ch{record.old_channel}->ch{record.new_channel}")
                voice_snapshot[client_id] = len(zone.received_by(client_id))
            else:
                injector.record("dropped", "call", client_id,
                                f"ch{record.old_channel} lost, no free "
                                "surviving channel")

    # -- SP crash → mid-call failover on the live data plane ----------------
    def on_sp_crash(spec: FaultSpec, affected: List[str]) -> None:
        sp = injector.failed_sps.get(spec.target)
        if sp is None or not spec.target.startswith(LIVE_ZONE + "/"):
            return
        note_failovers(zone.absorb_superpeer_failure(sp))

    injector.on_sp_crash.append(on_sp_crash)

    # -- degraded SP → blacklisted by the monitor → same failover path ------
    def on_blacklist(sp_id: str) -> None:
        injector.record("blacklisted", "sp_quality", sp_id,
                        "loss/jitter standard violated")
        sp = bed.superpeers.get(sp_id)
        if sp is None or not sp_id.startswith(LIVE_ZONE + "/"):
            return
        fail_superpeer(bed, sp_id, full_leave=False)
        note_failovers(zone.absorb_superpeer_failure(sp))

    monitor.on_blacklist_sp = on_blacklist

    # -- mix crash → orphans re-join through surviving mixes with backoff ---
    def on_mix_crash(spec: FaultSpec, orphans: List[str]) -> None:
        orphaned_at = loop.now
        for cid in orphans:
            if cid in zone.clients:
                continue  # live-zone clients are not re-joined directly
            client = bed.clients[cid]

            def rejoin(client=client):
                return join_zone(client,
                                 bed.directories[client.zone_id],
                                 bed.mixes, rng=bed.rng)

            stats = RejoinStats(client_id=cid, orphaned_at_s=orphaned_at,
                                rejoined_at_s=None, attempts=0,
                                backoff_s=0.0)
            rejoins.append(stats)

            def finish(task: LoopRetry, stats=stats) -> None:
                stats.attempts = task.attempts
                stats.backoff_s = task.backoff_s
                if task.succeeded:
                    stats.rejoined_at_s = task.finished_at
                    injector.record("rejoined", "client", stats.client_id,
                                    f"attempts={task.attempts}")
                else:
                    injector.record("gave_up", "client", stats.client_id,
                                    f"attempts={task.attempts}")

            LoopRetry(loop=loop, fn=rejoin, policy=cfg.rejoin_policy,
                      rng=bed.rng,
                      retry_on=(KeyError, RuntimeError, ValueError),
                      on_success=finish, on_give_up=finish,
                      start_delay_s=cfg.rejoin_policy.base_delay_s / 2,
                      label=cid)

    injector.on_mix_crash.append(on_mix_crash)

    plan.compile_onto(loop, injector)

    # -- the data plane: rounds as periodic events, calls as one-shots ------
    granted: set = set()

    def tick() -> None:
        for live in zone.clients.values():
            agent = live.agent
            if agent.state is CallState.IN_CALL:
                granted.add(live.client.client_id)
                zone.say(live.client.client_id,
                         f"v{zone.round_index}".encode())
        zone.step()

    zone_handle = loop.schedule_periodic(cfg.round_interval_s, tick,
                                         start_delay=0.0)

    pairs = [(f"live-{2 * i}", f"live-{2 * i + 1}")
             for i in range(cfg.call_pairs)]
    for caller, callee in pairs:
        loop.schedule_at(cfg.call_start_s,
                         lambda c=caller, p=callee: zone.start_call(c, p))

    loop.run(until=cfg.horizon_s)
    zone_handle.cancel()
    injector.teardown()
    loop.cancel_all()

    for client_id, before in voice_snapshot.items():
        post_failover_voice[client_id] = \
            len(zone.received_by(client_id)) - before

    return ChaosReport(
        plan_signature=plan.signature(),
        timeline=list(injector.timeline),
        events_processed=loop.events_processed,
        rounds_run=zone.round_index,
        call_legs_established=len(granted),
        failovers=list(zone.manager.failovers),
        rejoins=rejoins,
        post_failover_voice=post_failover_voice,
        blacklisted_sps=tuple(sorted(monitor.blacklisted_sps)),
    )

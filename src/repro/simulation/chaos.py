"""Chaos scenarios: fault plans replayed against a live deployment.

The acceptance scenario of the Herd failure model (§3.1, §3.5, §3.6.4)
in one runnable function: a live zone carries real calls at codec-frame
granularity while a :class:`~repro.faults.plan.FaultPlan` kills a mix
(orphaning direct clients, who re-join through surviving mixes with
exponential backoff) and kills or degrades-until-blacklisted an SP
mid-call (whose active call legs fail over to surviving channels and
resume).  :func:`run_chaos` returns a :class:`ChaosReport` with the
structured fault timeline, per-client re-join latencies, and per-leg
failover outcomes — and two runs with the same seed and plan produce
identical reports (the determinism regression the tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import execution as execution_registry
from repro.core.callmanager import FailoverRecord
from repro.core.retry import BackoffPolicy
from repro.faults.injector import TimelineEntry
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.scenario.model import (
    CTL_ZONE,
    LIVE_ZONE,
    RejoinStats,
    Scenario,
    Workload,
    ZoneShape,
)

__all__ = [
    "CTL_ZONE", "LIVE_ZONE", "ChaosConfig", "ChaosReport",
    "RejoinStats", "blacklist_plan", "default_plan", "run_chaos",
    "scenario_from_chaos_config",
]


@dataclass
class ChaosConfig:
    """Knobs of the chaos scenario (defaults match the acceptance
    scenario: one mix crash + one SP loss mid-call)."""

    seed: int = 20150817
    n_clients: int = 12
    n_channels: int = 6
    n_sps: int = 2
    k: int = 3
    n_direct_clients: int = 6
    round_interval_s: float = 0.02
    horizon_s: float = 12.0
    call_pairs: int = 1
    call_start_s: float = 0.5
    plan: Optional[FaultPlan] = None
    rejoin_policy: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        base_delay_s=0.25, multiplier=2.0, max_delay_s=2.0,
        max_attempts=8, jitter=0.1))
    #: SPMonitor sampling cadence for degradation faults.
    sample_interval_s: float = 0.25
    #: Zone execution engine, any name registered with
    #: :mod:`repro.execution` (``"event"``, ``"batch"``,
    #: ``"batch-v2"``).  The chaos report's determinism key is
    #: identical under all of them.
    execution: str = "event"
    #: Worker-process count for shardable engines (``batch-v2``).
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        execution_registry.resolve(self.execution, self.shards)


def default_plan() -> FaultPlan:
    """Mix crash (unclean: 1 s detection delay, recovers at +5 s) plus
    an SP crash mid-call."""
    return FaultPlan([
        FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0,
                  target=f"{CTL_ZONE}/mix-0", duration_s=5.0,
                  detection_delay_s=1.0),
        FaultSpec(kind=FaultKind.SP_CRASH, at_s=3.0,
                  target=f"{LIVE_ZONE}/sp-1"),
    ])


def blacklist_plan() -> FaultPlan:
    """Same mix crash, but the SP is not killed — its link degrades
    until the mix's :class:`SPMonitor` blacklists it, which triggers
    the same mid-call failover path."""
    return FaultPlan([
        FaultSpec(kind=FaultKind.MIX_CRASH, at_s=2.0,
                  target=f"{CTL_ZONE}/mix-0", duration_s=5.0,
                  detection_delay_s=1.0),
        FaultSpec(kind=FaultKind.LINK_DEGRADE, at_s=2.0,
                  target=f"{LIVE_ZONE}/sp-1", duration_s=4.0,
                  loss=0.30, jitter_ms=80.0),
    ])


@dataclass
class ChaosReport:
    """Everything a chaos run produced."""

    plan_signature: str
    timeline: List[TimelineEntry]
    events_processed: int
    rounds_run: int
    call_legs_established: int
    failovers: List[FailoverRecord]
    rejoins: List[RejoinStats]
    #: client id → voice cells received *after* its leg failed over.
    post_failover_voice: Dict[str, int]
    blacklisted_sps: Tuple[str, ...]

    @property
    def survived_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if r.survived]

    @property
    def dropped_failovers(self) -> List[FailoverRecord]:
        return [r for r in self.failovers if not r.survived]

    @property
    def call_survival_rate(self) -> float:
        if not self.failovers:
            return 1.0
        return len(self.survived_failovers) / len(self.failovers)

    @property
    def all_rejoined(self) -> bool:
        return bool(self.rejoins) and \
            all(r.rejoined_at_s is not None for r in self.rejoins)

    @property
    def mid_call_failover_demonstrated(self) -> bool:
        """At least one leg re-allocated to a surviving channel AND
        received voice after the switch — the call really resumed."""
        return any(self.post_failover_voice.get(cid, 0) > 0
                   for cid in self.post_failover_voice)

    def determinism_key(self) -> Tuple:
        """Everything that must match bit-for-bit between two runs with
        the same seed and plan.  Deliberately excludes process-global
        counters (numeric ids, call ids)."""
        return (
            self.plan_signature,
            tuple((e.time_s, e.action, e.kind, e.target, e.detail)
                  for e in self.timeline),
            self.events_processed,
            self.rounds_run,
            self.call_legs_established,
            tuple(sorted(self.post_failover_voice.items())),
            tuple((r.client_id, round(r.orphaned_at_s, 9),
                   None if r.rejoined_at_s is None
                   else round(r.rejoined_at_s, 9), r.attempts)
                  for r in sorted(self.rejoins,
                                  key=lambda r: r.client_id)),
            self.blacklisted_sps,
        )


def scenario_from_chaos_config(cfg: ChaosConfig) -> Scenario:
    """The chaos scenario as a declarative :class:`Scenario` — the
    same deployment shape, workload, plan, and retry policy the
    hand-rolled ``run_chaos`` body used to schedule."""
    plan = cfg.plan or default_plan()
    return Scenario(
        name="chaos",
        description="mix crash + SP loss mid-call (§3.5/§3.6.4 "
                    "acceptance scenario)",
        seed=cfg.seed,
        horizon_s=cfg.horizon_s,
        round_interval_s=cfg.round_interval_s,
        sample_interval_s=cfg.sample_interval_s,
        zone=ZoneShape(n_clients=cfg.n_clients,
                       n_channels=cfg.n_channels, n_sps=cfg.n_sps,
                       k=cfg.k, n_direct_clients=cfg.n_direct_clients,
                       client_prefix="live"),
        workload=Workload(kind="constant", call_pairs=cfg.call_pairs,
                          call_start_s=cfg.call_start_s),
        faults=tuple(plan.specs),
        rejoin_policy=cfg.rejoin_policy,
    )


def run_chaos(config: Optional[ChaosConfig] = None, *,
              seed: Optional[int] = None,
              n_clients: Optional[int] = None,
              n_channels: Optional[int] = None,
              scope=None, profiler=None) -> ChaosReport:
    """Run one chaos scenario end to end.

    The keyword overrides (``seed``, ``n_clients``, ``n_channels``)
    are conveniences over ``config`` for the common knobs; ``scope``
    is an optional :class:`repro.obs.instrument.Herdscope` that gets
    wired into the loop, injector, and live zone so the run produces
    metrics and traces; ``profiler`` an optional
    :class:`repro.obs.prof.profiler.PhaseProfiler` forwarded to the
    engine (host-time side channel; the determinism key is unchanged).

    Since the scenario engine landed this is a thin compatibility
    shim: the config compiles to a :class:`Scenario`
    (:func:`scenario_from_chaos_config`) and runs on
    :func:`repro.scenario.engine.execute`, whose base path schedules
    the exact same events — determinism keys of pre-engine runs are
    preserved.
    """
    cfg = config or ChaosConfig()
    overrides = {name: value
                 for name, value in (("seed", seed),
                                     ("n_clients", n_clients),
                                     ("n_channels", n_channels))
                 if value is not None}
    # Imported here, not at module scope: the engine imports the
    # simulation package (LiveZone, testbed, churn), so this is the
    # one edge of the scenario↔simulation cycle that must stay lazy.
    from repro.scenario.engine import execute
    if overrides:
        cfg = replace(cfg, **overrides)
    outcome = execute(scenario_from_chaos_config(cfg),
                      execution=cfg.execution, shards=cfg.shards,
                      scope=scope, profiler=profiler)
    return ChaosReport(
        plan_signature=outcome.plan_signature,
        timeline=list(outcome.timeline),
        events_processed=outcome.events_processed,
        rounds_run=outcome.rounds_run,
        call_legs_established=outcome.call_legs_established,
        failovers=list(outcome.failovers),
        rejoins=list(outcome.rejoins),
        post_failover_voice=dict(outcome.post_failover_voice),
        blacklisted_sps=outcome.blacklisted_sps,
    )

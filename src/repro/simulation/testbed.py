"""In-memory Herd deployments for tests, examples, and benchmarks.

:class:`HerdTestbed` wires together every protocol object of
:mod:`repro.core` — zones, directories, mixes, superpeers, clients —
into a working deployment that can join clients, build circuits,
register rendezvous, and place real end-to-end encrypted calls, all in
one process.  This is the programmatic equivalent of the paper's EC2
deployment, minus the wide-area network (which
:mod:`repro.simulation.deployment` models separately).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.client import HerdClient
from repro.core.directory import ZoneDirectory
from repro.core.join import join_zone
from repro.core.mix import Mix
from repro.core.rendezvous import CallSession, RendezvousService
from repro.core.superpeer import SuperPeer
from repro.core.zone import TrustZone, ZoneConfig
from repro.crypto.pki import RootOfTrust


@dataclass
class HerdTestbed:
    """A complete in-memory Herd deployment."""

    root: RootOfTrust
    rng: random.Random
    zones: Dict[str, TrustZone] = field(default_factory=dict)
    directories: Dict[str, ZoneDirectory] = field(default_factory=dict)
    mixes: Dict[str, Mix] = field(default_factory=dict)
    superpeers: Dict[str, SuperPeer] = field(default_factory=dict)
    clients: Dict[str, HerdClient] = field(default_factory=dict)
    service: Optional[RendezvousService] = None

    def add_zone(self, zone_id: str, site_id: str,
                 n_mixes: int = 2) -> TrustZone:
        """Create a zone with its directory and mixes."""
        zone = TrustZone(ZoneConfig(zone_id=zone_id, site_id=site_id))
        directory = ZoneDirectory(zone, self.root, self.rng)
        self.zones[zone_id] = zone
        self.directories[zone_id] = directory
        for i in range(n_mixes):
            mix_id = f"{zone_id}/mix-{i}"
            self.mixes[mix_id] = Mix(mix_id, directory, self.rng)
        self.service = RendezvousService(self.directories, self.mixes,
                                         self.rng)
        return zone

    def add_superpeer(self, sp_id: str, mix_id: str,
                      channels: Sequence[int]) -> SuperPeer:
        """Attach an SP to a mix, hosting the given channels."""
        sp = SuperPeer(sp_id, mix_id)
        for ch in channels:
            sp.host_channel(ch, [])
        self.superpeers[sp_id] = sp
        return sp

    def add_client(self, client_id: str, zone_id: str, k: int = 3,
                   via_superpeers: bool = False) -> HerdClient:
        """Create and join a client (direct link, or via SPs)."""
        client = HerdClient(client_id, zone_id, rng=self.rng, k=k)
        join_zone(client, self.directories[zone_id], self.mixes,
                  superpeers=self.superpeers if via_superpeers else None,
                  rng=self.rng)
        self.clients[client_id] = client
        return client

    def ready_for_calls(self, client_id: str) -> HerdClient:
        """Build the client's standing circuit and publish rendezvous."""
        client = self.clients[client_id]
        self.service.build_standing_circuit(client)
        self.service.register_callee(client)
        return client

    def call(self, caller_id: str, callee_id: str) -> CallSession:
        """Place a call between two ready clients."""
        caller = self.clients[caller_id]
        callee = self.clients[callee_id]
        return self.service.establish_call(caller, callee.certificate,
                                           callee)


def build_testbed(zone_specs: Optional[Sequence[Tuple[str, str, int]]]
                  = None, *, seed: int = 20150817) -> HerdTestbed:
    """Build a testbed; ``zone_specs`` is a list of
    (zone_id, site_id, n_mixes), defaulting to EU + NA with 2 mixes
    each.  ``seed`` is keyword-only."""
    rng = random.Random(seed)
    bed = HerdTestbed(root=RootOfTrust(rng), rng=rng)
    for zone_id, site_id, n_mixes in (zone_specs or
                                      [("zone-EU", "dc-eu", 2),
                                       ("zone-NA", "dc-na", 2)]):
        bed.add_zone(zone_id, site_id, n_mixes)
    return bed

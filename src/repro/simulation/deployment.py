"""Packet-level deployment simulation: the Fig. 7 experiment.

The paper deployed 8 mixes/rendezvous, 2 directories, and 4 SPs on four
EC2 regions and had volunteers make one-way calls between every zone
pair, measuring end-to-end latency and loss every second and scoring
them with the E-Model (§4.3.2).

This module reproduces that methodology on the network simulator:

* one zone per region (AU/EU/NA/SA) with an entry and rendezvous mix
  per zone, sub-millisecond intra-DC links, and the EC2 inter-region
  delay matrix,
* callers/callees on last-mile access links (volunteers "connected
  from university networks"),
* optionally one SP hop on each side (the 7-hop configuration),
* a stream of voice-sized probe packets per zone pair, timed through
  every hop, with loss and jitter,
* the Drac H=0 baseline: a direct path between the two clients.

Results feed :class:`~repro.voip.emodel.EModel` to produce the MOS
bands of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.obs.metrics import MetricsRegistry
from repro.netsim.topology import (
    DEFAULT_ACCESS_JITTER,
    DEFAULT_ACCESS_OWD,
    GeoTopology,
    default_topology,
)
from repro.voip.codec import Codec, G711
from repro.voip.emodel import CallQuality, EModel


@dataclass
class DeploymentConfig:
    """Parameters of the simulated deployment."""

    regions: Tuple[str, ...] = ("AU", "EU", "NA", "SA")
    with_sps: bool = False
    #: Per-mix store-and-forward processing delay (decrypt, re-pad).
    mix_processing_s: float = 0.0008
    #: SP forwarding delay (XOR, fan-out).
    sp_processing_s: float = 0.0004
    access_owd_s: float = DEFAULT_ACCESS_OWD
    access_jitter_s: float = DEFAULT_ACCESS_JITTER
    access_loss: float = 0.002
    backbone_loss: float = 0.0005
    n_probe_packets: int = 500
    codec: Codec = G711
    seed: int = 20150817


#: Probe OWD histogram buckets (ms): spans direct intra-continental
#: paths up to chaff-aligned 7-hop AU routes.
PROBE_OWD_BUCKETS_MS = (25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 250.0,
                        300.0, 400.0, 500.0, 750.0, 1000.0)


@dataclass
class LatencyMeasurement:
    """One zone pair's measured quality (one call direction).

    The counts live in a :class:`~repro.obs.metrics.MetricsRegistry`
    (``herd_probes_sent_total`` / ``herd_probes_received_total`` /
    ``herd_probe_owd_ms``, labelled by src/dst/system) — pass a shared
    registry to aggregate a whole Fig. 7 run; a private one is created
    otherwise.  ``owd_samples_ms`` is kept verbatim as well so the
    exact mean/p95 statistics are unchanged by the metrics backing.
    """

    src_region: str
    dst_region: str
    system: str
    owd_samples_ms: List[float] = field(default_factory=list)
    registry: Optional[MetricsRegistry] = \
        field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = MetricsRegistry()
        labels = {"src": self.src_region, "dst": self.dst_region,
                  "system": self.system}
        self._sent = self.registry.counter(
            "herd_probes_sent_total", labels,
            help="probe packets emitted per zone pair")
        self._received = self.registry.counter(
            "herd_probes_received_total", labels,
            help="probe packets delivered per zone pair")
        self._owd = self.registry.histogram(
            "herd_probe_owd_ms", labels,
            buckets=PROBE_OWD_BUCKETS_MS,
            help="one-way probe delay per zone pair (ms)")

    def record_sent(self) -> None:
        self._sent.inc()

    def record_received(self, owd_ms: float) -> None:
        self.owd_samples_ms.append(owd_ms)
        self._received.inc()
        self._owd.observe(owd_ms)

    @property
    def sent(self) -> int:
        return int(self._sent.value)

    @property
    def received(self) -> int:
        return int(self._received.value)

    @property
    def loss_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    @property
    def mean_owd_ms(self) -> float:
        if not self.owd_samples_ms:
            return float("inf")
        return float(np.mean(self.owd_samples_ms))

    @property
    def p95_owd_ms(self) -> float:
        if not self.owd_samples_ms:
            return float("inf")
        return float(np.percentile(self.owd_samples_ms, 95))

    def quality(self, model: Optional[EModel] = None) -> CallQuality:
        model = model or EModel()
        return model.evaluate(self.mean_owd_ms, self.loss_fraction)


class _RelayNode(Node):
    """Store-and-forward relay with chaff-clock alignment.

    A chaffed link transmits exactly one packet per codec frame at
    fixed clock ticks (§3.4.1) — a relayed payload cell must wait for
    the hop's next tick, adding Uniform(0, frame) delay per hop.  This
    per-hop alignment is the dominant component of Herd's extra latency
    over a direct path (the paper's ≈100 ms for 5–7 chaffed hops).
    """

    def __init__(self, name: str, loop, processing_s: float,
                 chaff_interval_s: float = 0.0):
        super().__init__(name, loop)
        self.processing_s = processing_s
        self.chaff_interval_s = chaff_interval_s
        #: Random phase of this hop's chaff clock.
        self._phase = (loop.rng.random() * chaff_interval_s
                       if chaff_interval_s > 0 else 0.0)
        self.on_packet(self._relay)

    def _next_tick_delay(self, ready_at: float) -> float:
        if self.chaff_interval_s <= 0:
            return 0.0
        since_phase = (ready_at - self._phase) % self.chaff_interval_s
        return (self.chaff_interval_s - since_phase) \
            % self.chaff_interval_s

    def _relay(self, packet: Packet) -> None:
        route: List[str] = packet.route  # type: ignore[attr-defined]
        idx = route.index(self.name)
        if idx + 1 >= len(route):
            return
        next_hop = route[idx + 1]
        ready_at = self.loop.now + self.processing_s
        delay = self.processing_s + self._next_tick_delay(ready_at)
        self.loop.schedule(delay, lambda: self.send(next_hop, packet))


class _SinkNode(Node):
    """Terminal node recording arrival times."""

    def __init__(self, name: str, loop, measurement: LatencyMeasurement):
        super().__init__(name, loop)
        self.measurement = measurement
        self.on_packet(self._record)

    def _record(self, packet: Packet) -> None:
        owd = (self.loop.now - packet.departure) * 1000.0  # type: ignore
        self.measurement.record_received(owd)


def _build_pair(loop: EventLoop, topo: GeoTopology,
                config: DeploymentConfig, src: str, dst: str,
                system: str,
                registry: Optional[MetricsRegistry] = None
                ) -> Tuple[Node, List[str], LatencyMeasurement]:
    """Wire the node chain for one (src region → dst region) call and
    return (source node, route, measurement)."""
    measurement = LatencyMeasurement(src, dst, system,
                                     registry=registry)
    source = Node(f"caller-{src}", loop)
    sink = _SinkNode(f"callee-{dst}", loop, measurement)
    site_src, site_dst = f"dc-{src.lower()}", f"dc-{dst.lower()}"

    if system == "drac":
        # H=0: a direct path between the two clients.
        Link(loop, source, sink,
             one_way_delay=(2 * config.access_owd_s
                            + topo.inter_region_delay(src, dst)),
             jitter_std=config.access_jitter_s,
             loss_rate=config.access_loss)
        return source, [source.name, sink.name], measurement

    chain: List[Node] = [source]
    specs: List[Tuple[float, float, float]] = []  # delay, jitter, loss
    frame_s = config.codec.frame_ms / 1000.0

    def relay(name: str, processing: float) -> Node:
        node = _RelayNode(name, loop, processing,
                          chaff_interval_s=frame_s)
        chain.append(node)
        return node

    if config.with_sps:
        relay(f"sp-{src}", config.sp_processing_s)
        specs.append((config.access_owd_s / 2, config.access_jitter_s,
                      config.access_loss))
    relay(f"entry-{src}", config.mix_processing_s)
    specs.append((config.access_owd_s, config.access_jitter_s,
                  config.access_loss))
    relay(f"rdv-{src}", config.mix_processing_s)
    specs.append((topo.one_way_delay(site_src, site_src), 0.0,
                  config.backbone_loss))
    relay(f"rdv-{dst}", config.mix_processing_s)
    specs.append((topo.one_way_delay(site_src, site_dst), 0.0,
                  config.backbone_loss))
    relay(f"entry-{dst}", config.mix_processing_s)
    specs.append((topo.one_way_delay(site_dst, site_dst), 0.0,
                  config.backbone_loss))
    if config.with_sps:
        relay(f"sp-{dst}", config.sp_processing_s)
        specs.append((config.access_owd_s / 2, config.access_jitter_s,
                      config.access_loss))
    chain.append(sink)
    specs.append((config.access_owd_s, config.access_jitter_s,
                  config.access_loss))

    for (a, b), (delay, jitter, loss) in zip(zip(chain, chain[1:]),
                                             specs):
        Link(loop, a, b, one_way_delay=delay, jitter_std=jitter,
             loss_rate=loss)
    return source, [n.name for n in chain], measurement


def measure_pair_latencies(config: Optional[DeploymentConfig] = None,
                           systems: Tuple[str, ...] = ("herd", "drac"),
                           registry: Optional[MetricsRegistry] = None
                           ) -> Dict[Tuple[str, str, str],
                                     LatencyMeasurement]:
    """Run probe streams for every ordered zone pair and system.

    Returns measurements keyed by (src_region, dst_region, system).
    One-way calls between every zone pair, per the paper's methodology
    (12 calls for 4 zones — plus the reverse directions, which are
    statistically identical here).  ``registry`` aggregates every
    pair's probe counters and OWD histogram in one place (the Fig. 7
    benchmark reads its rows from there).
    """
    config = config or DeploymentConfig()
    # Explicit None test: an instrument-less registry is len() == 0 and
    # therefore falsy, but it is still the caller's aggregation point.
    if registry is None:
        registry = MetricsRegistry()
    topo = default_topology()
    results: Dict[Tuple[str, str, str], LatencyMeasurement] = {}
    frame_interval = config.codec.frame_ms / 1000.0
    for src in config.regions:
        for dst in config.regions:
            if src == dst:
                continue
            loop = EventLoop(seed=config.seed)
            registry.use_clock(lambda loop=loop: loop.now)
            for system in systems:
                source, route, measurement = _build_pair(
                    loop, topo, config, src, dst, system,
                    registry=registry)
                payload = b"\xa5" * config.codec.payload_bytes

                def emit(i, source=source, route=route,
                         measurement=measurement, payload=payload):
                    packet = Packet(payload, route[0], route[-1],
                                    kind="voip")
                    packet.route = route  # type: ignore[attr-defined]
                    packet.departure = loop.now  # type: ignore
                    measurement.record_sent()
                    source.send(route[1], packet)

                for i in range(config.n_probe_packets):
                    loop.schedule(i * frame_interval,
                                  lambda i=i, emit=emit: emit(i))
                results[(src, dst, system)] = measurement
            loop.run()
    return results


def herd_extra_latency_ms(results: Dict[Tuple[str, str, str],
                                        LatencyMeasurement]) -> float:
    """Average one-way latency Herd adds over a direct (Drac H=0) call
    across all measured pairs — the paper reports ≈100 ms."""
    deltas = []
    pairs = {(s, d) for (s, d, sys) in results if sys == "herd"}
    for s, d in pairs:
        herd = results[(s, d, "herd")]
        drac = results[(s, d, "drac")]
        if herd.received and drac.received:
            deltas.append(herd.mean_owd_ms - drac.mean_owd_ms)
    if not deltas:
        raise ValueError("no complete pair measurements")
    return float(np.mean(deltas))

"""Churn, failures, and failover (§3.1, §3.5).

Two concerns:

* **Failover** — "In the case of a mix or superpeer failure, a client
  contacts another mix in the same zone and re-joins."
  :func:`fail_mix` and :func:`rejoin_clients` drive that path against a
  live testbed.

* **Availability** — Herd assumes clients stay online "modulo power or
  network outages"; the paper cites that "half of Skype users are
  available more than 80% of the time".  :class:`AvailabilityModel`
  synthesizes per-user on/off processes matching that statistic, used
  to study how offline periods would expose users to long-term
  intersection attacks if Herd did *not* keep them connected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.join import JoinResult, join_zone
from repro.simulation.testbed import HerdTestbed


def fail_mix(bed: HerdTestbed, mix_id: str,
             prune_directory: bool = True) -> List[str]:
    """Take a mix down: remove it from the zone and the deployment.
    Returns the ids of the clients that were attached to it and now
    need to re-join.

    A double failure (or a mix the testbed never had) raises a clear
    ``KeyError``; a mix the directory already pruned is simply skipped
    in the zone removal.  With ``prune_directory=False`` the crash is
    *unclean*: the directory keeps listing the dead mix (and keeps
    redirecting joins to it) until something calls
    :meth:`~repro.core.zone.TrustZone.remove_mix` — the detection-delay
    window the fault injector uses to exercise join retries.
    """
    mix = bed.mixes.pop(mix_id, None)
    if mix is None:
        raise KeyError(f"no such mix {mix_id}")
    if prune_directory and mix_id in mix.zone.mix_ids:
        mix.zone.remove_mix(mix_id)
    orphans = [cid for cid, client in bed.clients.items()
               if client.mix_id == mix_id]
    for cid in orphans:
        bed.clients[cid].leave()
    return orphans


def recover_mix(bed: HerdTestbed, mix) -> None:
    """Bring a failed mix back with the same identity but no client
    sessions (a restart keeps keys and enrollment; clients must re-run
    the §3.5 join).  ``mix`` is the object :func:`fail_mix` removed."""
    if mix.mix_id in bed.mixes:
        raise ValueError(f"mix {mix.mix_id} is already running")
    mix.reset_client_state()
    bed.mixes[mix.mix_id] = mix
    if mix.mix_id not in mix.zone.mix_ids:
        mix.zone.add_mix(mix.mix_id)


def rejoin_clients(bed: HerdTestbed, client_ids: Sequence[str],
                   failed_mix: Optional[str] = None) -> Dict[str, JoinResult]:
    """Re-join orphaned clients through their zone's surviving mixes."""
    results = {}
    for cid in client_ids:
        client = bed.clients[cid]
        results[cid] = join_zone(
            client, bed.directories[client.zone_id], bed.mixes,
            rng=bed.rng, exclude_mix=failed_mix)
    return results


def fail_superpeer(bed: HerdTestbed, sp_id: str,
                   full_leave: bool = True) -> List[str]:
    """Take an SP down.  Always returns the (possibly empty) sorted
    list of clients attached through it — an SP with zero attached
    clients yields ``[]``, never ``None``.

    With ``full_leave=True`` (the historical behaviour) affected
    clients drop their whole session and must re-join.  With
    ``full_leave=False`` they only shed the attachments the dead SP
    hosted and stay joined on their surviving channels — the state the
    mid-call failover path (§3.6.4) starts from.
    """
    sp = bed.superpeers.pop(sp_id, None)
    if sp is None:
        raise KeyError(f"no such superpeer {sp_id}")
    dead_channels = set(sp.channel_clients)
    affected: Set[str] = set()
    for members in sp.channel_clients.values():
        affected.update(members)
    for cid in sorted(affected):
        client = bed.clients.get(cid)
        if client is None:
            continue
        if full_leave:
            client.leave()
        else:
            client.detach_channels(dead_channels)
    return sorted(affected)


def recover_superpeer(bed: HerdTestbed, sp) -> None:
    """Bring a failed SP back hosting the same channels but with empty
    membership; clients re-attach by re-joining.  ``sp`` is the object
    :func:`fail_superpeer` removed."""
    if sp.sp_id in bed.superpeers:
        raise ValueError(f"superpeer {sp.sp_id} is already running")
    sp.reset_members()
    bed.superpeers[sp.sp_id] = sp


@dataclass
class AvailabilityModel:
    """Per-user alternating on/off availability processes.

    Session and gap lengths are exponential; per-user mean availability
    is drawn so that the population matches a target quantile (default:
    half the users above 80%, the Skype measurement the paper cites).
    """

    n_users: int
    median_availability: float = 0.80
    mean_session_s: float = 8 * 3600.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.median_availability < 1.0:
            raise ValueError("median availability must be in (0, 1)")
        if self.n_users < 1:
            raise ValueError("need at least one user")
        rng = random.Random(self.seed)
        # Beta-distributed per-user availability centred on the median.
        alpha = 4.0 * self.median_availability
        beta = 4.0 * (1.0 - self.median_availability)
        self.availability = [
            min(0.999, max(0.001, rng.betavariate(alpha, beta)))
            for _ in range(self.n_users)
        ]
        self._rng = rng

    def fraction_above(self, threshold: float) -> float:
        return sum(1 for a in self.availability
                   if a > threshold) / self.n_users

    def online_periods(self, user: int, horizon_s: float
                       ) -> List[Tuple[float, float]]:
        """Alternating online intervals for one user over a horizon."""
        avail = self.availability[user]
        mean_gap = self.mean_session_s * (1.0 - avail) / avail
        periods: List[Tuple[float, float]] = []
        t = 0.0
        online = self._rng.random() < avail
        while t < horizon_s:
            if online:
                length = self._rng.expovariate(1.0 / self.mean_session_s)
                periods.append((t, min(t + length, horizon_s)))
            else:
                length = self._rng.expovariate(1.0 / max(mean_gap, 1.0))
            t += length
            online = not online
        return periods

    def online_at(self, periods: List[Tuple[float, float]],
                  t: float) -> bool:
        return any(a <= t < b for a, b in periods)


def exposure_rounds(model: AvailabilityModel, target: int,
                    event_times: Sequence[float], horizon_s: float
                    ) -> List[Set[int]]:
    """What a long-term intersection adversary gets if user presence
    were observable (i.e. without Herd's always-on connections): the
    set of users online at each of the target's communication events.

    With Herd, clients stay connected regardless of calls, so every
    round would contain (nearly) the whole population instead.
    """
    periods = {u: model.online_periods(u, horizon_s)
               for u in range(model.n_users)}
    rounds: List[Set[int]] = []
    for t in event_times:
        online = {u for u in range(model.n_users)
                  if model.online_at(periods[u], t)}
        online.add(target)  # the target was communicating, so online
        rounds.append(online)
    return rounds

"""The full Herd protocol over the simulated wide-area network.

:mod:`repro.simulation.deployment` measures latency with abstract
relays; :mod:`repro.simulation.testbed` runs the real protocol
synchronously.  This module combines them: real mixes, real circuits,
real layered encryption — with every cell carried as a datagram across
:mod:`repro.netsim` links whose delays come from the EC2 geography, and
with per-hop chaff-clock alignment.

The result is an executable end-to-end claim: an actual encrypted Herd
call between two continents, timed on the wire, decrypting correctly at
the far end.

Wire format of a cell datagram (inside :class:`~repro.netsim.packet
.Packet` payloads)::

    1 byte   type: F(orward) / B(ackward) / X(rendezvous transfer)
    8 bytes  circuit id
    8 bytes  sequence number
    N bytes  cell (fixed CELL_SIZE) or raw e2e payload (type X)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rendezvous import CallSession
from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.onion import unwrap_backward, wrap_onion
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.topology import DEFAULT_ACCESS_JITTER, \
    DEFAULT_ACCESS_OWD, GeoTopology, default_topology
from repro.simulation.testbed import HerdTestbed, build_testbed

_HEADER = struct.Struct("<cQQ")

_FORWARD = b"F"
_BACKWARD = b"B"
_TRANSFER = b"X"


def _encode(kind: bytes, circuit_id: int, seq: int,
            data: bytes) -> bytes:
    return _HEADER.pack(kind, circuit_id, seq) + data


def _decode(payload: bytes) -> Tuple[bytes, int, int, bytes]:
    kind, circuit_id, seq = _HEADER.unpack(payload[:_HEADER.size])
    return kind, circuit_id, seq, payload[_HEADER.size:]


@dataclass
class WiredConfig:
    """Knobs of the wired deployment."""

    access_owd_s: float = DEFAULT_ACCESS_OWD
    access_jitter_s: float = DEFAULT_ACCESS_JITTER
    #: Chaffed links emit at frame ticks; relays align to the next one.
    chaff_interval_s: float = 0.02
    mix_processing_s: float = 0.0008
    seed: int = 20150817


@dataclass
class Delivery:
    """One voice frame's arrival at the receiving client."""

    sent_at: float
    received_at: float
    frame: bytes

    @property
    def owd_ms(self) -> float:
        return (self.received_at - self.sent_at) * 1000.0


class WiredHerd:
    """A Herd testbed whose data plane runs on the network simulator."""

    def __init__(self, zone_sites: Optional[Dict[str, str]] = None,
                 mixes_per_zone: int = 2,
                 config: Optional[WiredConfig] = None):
        self.config = config or WiredConfig()
        zone_sites = zone_sites or {"zone-EU": "dc-eu",
                                    "zone-NA": "dc-na"}
        self.bed: HerdTestbed = build_testbed(
            [(z, s, mixes_per_zone) for z, s in zone_sites.items()],
            seed=self.config.seed)
        self.topology: GeoTopology = default_topology()
        self.loop = EventLoop(seed=self.config.seed)
        self._zone_site = dict(zone_sites)
        self.nodes: Dict[str, Node] = {}
        self._chaff_phase: Dict[str, float] = {}
        self._calls_by_circuit: Dict[int, Tuple["WiredCall", str]] = {}
        self._wire_mixes()

    # -- wiring ------------------------------------------------------------------

    def _site_of_mix(self, mix_id: str) -> str:
        zone = self.bed.mixes[mix_id].zone.zone_id
        return self._zone_site[zone]

    def _wire_mixes(self) -> None:
        for mix_id in self.bed.mixes:
            node = Node(mix_id, self.loop)
            node.on_packet(lambda p, m=mix_id: self._at_mix(m, p))
            self.nodes[mix_id] = node
            self._chaff_phase[mix_id] = (
                self.loop.rng.random() * self.config.chaff_interval_s)
        mix_ids = sorted(self.bed.mixes)
        for i, a in enumerate(mix_ids):
            for b in mix_ids[i + 1:]:
                Link(self.loop, self.nodes[a], self.nodes[b],
                     one_way_delay=self.topology.one_way_delay(
                         self._site_of_mix(a), self._site_of_mix(b)))

    def add_client(self, client_id: str, zone_id: str,
                   region: Optional[str] = None) -> None:
        """Join a client and wire its access link to its entry mix."""
        client = self.bed.add_client(client_id, zone_id)
        self.bed.ready_for_calls(client_id)
        node = Node(client_id, self.loop)
        node.on_packet(lambda p, c=client_id: self._at_client(c, p))
        self.nodes[client_id] = node
        self._chaff_phase[client_id] = (
            self.loop.rng.random() * self.config.chaff_interval_s)
        site = self._zone_site[zone_id]
        region = region or self.bed.mixes[client.mix_id].zone \
            .config.site_id.split("-")[1].upper()
        # Wire the client to every mix on its circuit's entry (cells
        # enter and leave through the entry mix only).
        Link(self.loop, node, self.nodes[client.mix_id],
             one_way_delay=self.topology.access_delay(site, region),
             jitter_std=self.config.access_jitter_s)

    # -- chaff clock --------------------------------------------------------------

    def _aligned_send(self, from_name: str, to_name: str,
                      payload: bytes, processing: float = 0.0) -> None:
        """Send at the next chaff tick of ``from_name``'s link clock —
        payload cells replace chaff packets, they never jump the
        schedule (§3.4.1)."""
        interval = self.config.chaff_interval_s
        ready = self.loop.now + processing
        if interval > 0:
            phase = self._chaff_phase[from_name]
            wait = (phase - ready) % interval
        else:
            wait = 0.0
        packet = Packet(payload, from_name, to_name, kind="voip")
        if from_name == to_name:
            # A rendezvous mix spliced to itself (both parties chose the
            # same mix): local hand-off, no wire.
            self.loop.schedule(processing,
                               lambda: self.nodes[to_name].receive(
                                   packet))
            return
        self.loop.schedule(processing + wait,
                           lambda: self.nodes[from_name].send(to_name,
                                                              packet))

    # -- protocol handlers -----------------------------------------------------------

    def _at_mix(self, mix_id: str, packet: Packet) -> None:
        mix = self.bed.mixes[mix_id]
        kind, circuit_id, seq, data = _decode(packet.payload)
        if kind == _FORWARD:
            action = mix.forward_cell(circuit_id, data, seq)
            if action.kind == "forward":
                self._aligned_send(mix_id, action.peer,
                                   _encode(_FORWARD, circuit_id, seq,
                                           action.data),
                                   self.config.mix_processing_s)
            elif action.kind == "to_peer_mix":
                self._aligned_send(mix_id, action.peer,
                                   _encode(_TRANSFER,
                                           action.peer_circuit, seq,
                                           action.data),
                                   self.config.mix_processing_s)
        elif kind == _TRANSFER:
            action = mix.inject_backward(circuit_id, data, seq)
            self._aligned_send(mix_id, action.peer,
                               _encode(_BACKWARD, circuit_id, seq,
                                       action.data),
                               self.config.mix_processing_s)
        elif kind == _BACKWARD:
            action = mix.backward_cell(circuit_id, data, seq)
            self._aligned_send(mix_id, action.peer,
                               _encode(_BACKWARD, circuit_id, seq,
                                       action.data),
                               self.config.mix_processing_s)
        else:
            raise ValueError(f"unknown wire type {kind!r}")

    def _at_client(self, client_id: str, packet: Packet) -> None:
        kind, circuit_id, seq, data = _decode(packet.payload)
        if kind != _BACKWARD:
            return
        entry = self._calls_by_circuit.get(circuit_id)
        if entry is None:
            return
        call, side = entry
        call._deliver(side, seq, data, self.loop.now)

    # -- calls -------------------------------------------------------------------

    def call(self, caller_id: str, callee_id: str) -> "WiredCall":
        """Establish the call (control plane) and return the wired
        voice session (data plane over the simulator)."""
        session = self.bed.call(caller_id, callee_id)
        call = WiredCall(self, session, caller_id, callee_id)
        self._calls_by_circuit[session.caller.circuit.circuit_id] = \
            (call, "caller")
        self._calls_by_circuit[session.callee.circuit.circuit_id] = \
            (call, "callee")
        return call


class WiredCall:
    """One established call whose voice frames ride the simulator."""

    def __init__(self, net: WiredHerd, session: CallSession,
                 caller_id: str, callee_id: str):
        self.net = net
        self.session = session
        self.caller_id = caller_id
        self.callee_id = callee_id
        self._sent_at: Dict[Tuple[str, int], Tuple[float, int]] = {}
        self.deliveries: Dict[str, List[Delivery]] = {
            "caller": [], "callee": []}

    def _aead(self, direction: str) -> ChaCha20Poly1305:
        return (self.session._caller_aead
                if direction == "caller_to_callee"
                else self.session._callee_aead)

    def send_voice(self, direction: str, frame: bytes,
                   at: Optional[float] = None) -> None:
        """Schedule one voice frame; it arrives via the simulator."""
        if direction == "caller_to_callee":
            sender = self.session.caller
            sender_id = self.caller_id
            receive_side = "callee"
        elif direction == "callee_to_caller":
            sender = self.session.callee
            sender_id = self.callee_id
            receive_side = "caller"
        else:
            raise ValueError(f"unknown direction {direction!r}")
        seq = sender.send_seq
        sender.send_seq += 1
        ciphertext = self._aead(direction).encrypt(
            CallSession._nonce(seq), frame)
        cell = wrap_onion(sender.circuit.keys, ciphertext, seq)
        payload = _encode(_FORWARD, sender.circuit.circuit_id, seq, cell)

        def emit():
            self._sent_at[(receive_side, seq)] = (self.net.loop.now,
                                                  len(frame))
            self.net._aligned_send(sender_id, sender.circuit.entry_mix,
                                   payload)
        when = at if at is not None else self.net.loop.now
        self.net.loop.schedule_at(when, emit)

    def _deliver(self, side: str, seq: int, cell: bytes,
                 now: float) -> None:
        endpoint = (self.session.callee if side == "callee"
                    else self.session.caller)
        direction = ("caller_to_callee" if side == "callee"
                     else "callee_to_caller")
        ciphertext = unwrap_backward(endpoint.circuit.keys, cell, seq)
        frame = self._aead(direction).decrypt(
            CallSession._nonce(seq), ciphertext)
        sent_at, _ = self._sent_at.pop((side, seq), (now, len(frame)))
        self.deliveries[side].append(
            Delivery(sent_at=sent_at, received_at=now, frame=frame))

    def owd_ms(self, side: str) -> List[float]:
        return [d.owd_ms for d in self.deliveries[side]]

"""The wire plane of a live zone, under either execution engine.

A :class:`~repro.simulation.live.LiveZone` runs the SP data plane at
round granularity but historically had no *wire image* — nothing an
adversary could tap.  :class:`WireFabric` materializes the zone's
logical cell flows (client→SP upstream, SP→mix XOR rounds, mix→SP
downstream, SP→client broadcast) onto :mod:`repro.netsim` links, under
one of two execution engines:

* ``execution="event"`` — the classical per-cell schedule: one
  :class:`~repro.netsim.packet.Packet` and one heap event per cell, as
  a packet-level simulator would do.  O(cells) events per round.
* ``execution="batch"`` — round-synchronous batches: a
  :class:`~repro.netsim.rounds.RoundScheduler` fires one event per
  round and every link carries its round's cells as a single
  :class:`~repro.netsim.rounds.CellBatch`.  O(1) events per round.

**Observational equivalence** (DESIGN.md §9): because Herd emission is
constant-rate — a function of the clock, never of payload (invariant
I6) — the two engines offer the same cells to the same links at the
same virtual times in the same order, so a tap's
:class:`~repro.netsim.observer.LinkObserver` records *byte-identical*
observation streams under both.  The engines differ only in cost:
events processed, objects allocated.

The fabric is deliberately lazy: nodes and links appear on first
emission, so mid-run churn (SP failures, re-joins) needs no
re-wiring.  Links are zero-delay logical hops; the geographic path
delays live in :mod:`repro.simulation.wired`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.observer import LinkObserver
from repro.netsim.packet import Packet
from repro.netsim.rounds import CellBatch, RoundScheduler

EXECUTIONS = ("event", "batch")

#: One codec frame (20 ms G.711): the round tick of the data plane.
DEFAULT_ROUND_INTERVAL_S = 0.02


def _noop_packet(_packet) -> None:
    return None


def _noop_batch(_batch) -> None:
    return None


class WireFabric:
    """A zone's wire plane: cells offered to tapped links per round.

    Usage: construct, assign to ``zone.wire``, and every
    :meth:`LiveZone.step` flushes the round's cells through the
    fabric.  Attach the adversary via ``fabric.observer`` (a global
    passive tap on every link).

    Parameters
    ----------
    seed:
        Seed of the fabric's :class:`~repro.netsim.engine.EventLoop`
        (only consumed by lossy/jittery links; the default zero-delay
        fabric draws nothing).
    interval:
        Round tick in seconds of virtual time.
    execution:
        ``"event"`` (per-cell events/packets) or ``"batch"``
        (one :class:`CellBatch` per link per round).
    observer:
        The tap attached to every link; defaults to a fresh global
        :class:`~repro.netsim.observer.LinkObserver`.
    """

    def __init__(self, *, seed: int = 0,
                 interval: float = DEFAULT_ROUND_INTERVAL_S,
                 execution: str = "event",
                 observer: Optional[LinkObserver] = None):
        if execution not in EXECUTIONS:
            raise ValueError(f"execution must be one of {EXECUTIONS}, "
                             f"not {execution!r}")
        self.execution = execution
        self.loop = EventLoop(seed=seed)
        self.scheduler = RoundScheduler(self.loop, interval)
        self.scheduler.on_round(self._transmit_queued)
        self.observer = observer if observer is not None \
            else LinkObserver()
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        #: (src, dst) → queued (payload, kind, count) runs of the
        #: current round, in emission order (dict preserves insertion
        #: order).  ``count`` > 1 encodes a run of wire-identical
        #: cells sharing one payload reference (constant-rate fill).
        self._pending: Dict[Tuple[str, str],
                            List[Tuple[bytes, str, int]]] = {}
        self.rounds_flushed = 0
        self.cells_carried = 0
        #: Optional phase-profiler hook (duck-typed); install via
        #: :meth:`set_profiler` so the loop, scheduler, and every
        #: link — current and future — share one profiler.
        self.prof = None

    def set_profiler(self, prof) -> None:
        """Attach (or with ``None``, detach) a
        :class:`~repro.obs.prof.profiler.PhaseProfiler` across the
        whole fabric: the fabric itself (``deliver``), the loop and
        scheduler (``schedule``), and every link's observer fan-out
        (``adversary-observe``), including links created later."""
        self.prof = prof
        self.loop.prof = prof
        self.scheduler.prof = prof
        for link in self._links.values():
            link.prof = prof

    # -- lazy topology ---------------------------------------------------------

    def node(self, name: str) -> Node:
        """Get or create the named endpoint (a counting sink: the
        protocol runs in the zone; the fabric carries the wire
        image)."""
        found = self.nodes.get(name)
        if found is None:
            found = Node(name, self.loop)
            found.on_packet(_noop_packet)
            found.on_batch(_noop_batch)
            self.nodes[name] = found
        return found

    def link_between(self, a_name: str, b_name: str) -> Link:
        """Get or create the zero-delay logical link between two
        endpoints, with the fabric's observer attached."""
        key = (a_name, b_name) if a_name <= b_name \
            else (b_name, a_name)
        found = self._links.get(key)
        if found is None:
            found = Link(self.loop, self.node(key[0]),
                         self.node(key[1]))
            found.add_observer(self.observer)
            if self.prof is not None:
                found.prof = self.prof
            self._links[key] = found
        return found

    # -- emission --------------------------------------------------------------

    def emit(self, src: str, dst: str, payload: bytes,
             kind: str = "data") -> None:
        """Queue one cell for this round's flush (payload by
        reference)."""
        self._pending.setdefault((src, dst), []).append((payload,
                                                         kind, 1))

    def emit_repeated(self, src: str, dst: str, payload: bytes,
                      n: int, kind: str = "chaff") -> None:
        """Queue ``n`` wire-identical cells sharing one payload
        reference — the constant-rate fill of a trunk link costs one
        queue entry regardless of the cell count (the batch engine
        carries it via :meth:`CellBatch.append_repeated`; the event
        engine expands it to n packets, as it would have anyway)."""
        if n < 0:
            raise ValueError("cannot emit a negative cell count")
        if n:
            self._pending.setdefault((src, dst), []).append(
                (payload, kind, n))

    def flush_round(self, round_index: int) -> None:
        """Transmit everything queued, stamped at the round's tick.

        Event engine: one transmission event per cell (plus one
        delivery event each) — the per-cell hot path this fabric
        exists to measure.  Batch engine: a single round event inside
        which every link's vector rides one
        :meth:`~repro.netsim.link.Link.transmit_batch` call.
        Either way the cells hit the links in identical order at the
        identical virtual time.
        """
        if self.execution == "batch":
            self.scheduler.run_round(round_index)
        else:
            prof = self.prof
            if prof is not None:
                prof.begin("deliver")
            before = self.cells_carried
            t = self.scheduler.time_of(round_index)
            loop = self.loop
            for (src, dst), runs in self._pending.items():
                link = self.link_between(src, dst)
                sender = self.nodes[src]
                for payload, kind, count in runs:
                    for _ in range(count):
                        packet = Packet(payload, src, dst, kind=kind)
                        loop.schedule_at(
                            t, lambda lk=link, s=sender, p=packet:
                            lk.transmit(s, p))
                    self.cells_carried += count
            self._pending.clear()
            loop.run(until=t)
            self.rounds_flushed += 1
            if prof is not None:
                prof.end(cells=self.cells_carried - before)

    def _transmit_queued(self, round_index: int) -> None:
        """Batch-engine round handler: one CellBatch per pending
        link, transmitted inline (zero delay → no extra events)."""
        prof = self.prof
        if prof is not None:
            prof.begin("deliver")
        before = self.cells_carried
        for (src, dst), runs in self._pending.items():
            link = self.link_between(src, dst)
            batch = CellBatch(src, dst, round_index)
            for payload, kind, count in runs:
                if count == 1:
                    batch.append(payload, kind=kind)
                else:
                    batch.append_repeated(payload, count, kind=kind)
            link.transmit_batch(self.nodes[src], batch)
            self.cells_carried += len(batch)
        self._pending.clear()
        self.rounds_flushed += 1
        if prof is not None:
            prof.end(cells=self.cells_carried - before)

    # -- accounting ------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Heap events the wire plane cost so far — the quantity the
        batch engine exists to collapse."""
        return self.loop.events_processed

    def __repr__(self) -> str:
        return (f"WireFabric({self.execution}, "
                f"{self.rounds_flushed} rounds, "
                f"{self.cells_carried} cells, "
                f"{self.events_processed} events)")

"""The wire plane of a live zone, under either execution engine.

A :class:`~repro.simulation.live.LiveZone` runs the SP data plane at
round granularity but historically had no *wire image* — nothing an
adversary could tap.  :class:`WireFabric` materializes the zone's
logical cell flows (client→SP upstream, SP→mix XOR rounds, mix→SP
downstream, SP→client broadcast) onto :mod:`repro.netsim` links, under
one of two execution engines:

* ``execution="event"`` — the classical per-cell schedule: one
  :class:`~repro.netsim.packet.Packet` and one heap event per cell, as
  a packet-level simulator would do.  O(cells) events per round.
* ``execution="batch"`` — round-synchronous batches: a
  :class:`~repro.netsim.rounds.RoundScheduler` fires one event per
  round and every link carries its round's cells as a single
  :class:`~repro.netsim.rounds.CellBatch`.  O(1) events per round.
* ``execution="batch-v2"`` — the vectorized plane (DESIGN.md §13):
  every link carries its round as a run-length
  :class:`~repro.netsim.rounds.CellVector` with aggregate chaff
  accounting, so a constant-rate round costs O(runs), not O(cells).
  With ``shards > 1`` the per-(link, round) segments fan out to
  worker processes (:mod:`repro.netsim.shards`) and
  :meth:`WireFabric.finalize` merges results deterministically.

Engines resolve by name through the :mod:`repro.execution` registry —
this module never string-matches beyond its resolved ``wire_mode``.

**Observational equivalence** (DESIGN.md §9): because Herd emission is
constant-rate — a function of the clock, never of payload (invariant
I6) — the engines offer the same cells to the same links at the
same virtual times in the same order, so a tap's
:class:`~repro.netsim.observer.LinkObserver` records *byte-identical*
observation streams under all of them.  The engines differ only in
cost: events processed, objects allocated.

The fabric is deliberately lazy: nodes and links appear on first
emission, so mid-run churn (SP failures, re-joins) needs no
re-wiring.  Links are zero-delay logical hops; the geographic path
delays live in :mod:`repro.simulation.wired`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import execution as execution_registry
from repro.core.transport import CellTransport
from repro.netsim.engine import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.observer import LinkObserver
from repro.netsim.packet import IP_UDP_HEADER_BYTES, Packet
from repro.netsim.rounds import CellBatch, RoundScheduler
from repro.netsim.shards import (ShardChunk, ShardPlan, ShardRunner,
                                 ShardSegment, merge_results)
from repro.netsim.taps import offer_round_runs

#: Registered engine names, resolved from the :mod:`repro.execution`
#: registry (kept as a module attribute for existing importers).
EXECUTIONS = execution_registry.plane_names()

#: One codec frame (20 ms G.711): the round tick of the data plane.
DEFAULT_ROUND_INTERVAL_S = 0.02


def _noop_packet(_packet) -> None:
    return None


def _noop_batch(_batch) -> None:
    return None


class WireFabric(CellTransport):
    """A zone's wire plane: cells offered to tapped links per round.

    Usage: construct, assign to ``zone.wire``, and every
    :meth:`LiveZone.step` flushes the round's cells through the
    fabric.  Attach the adversary via ``fabric.observer`` (a global
    passive tap on every link).

    Parameters
    ----------
    seed:
        Seed of the fabric's :class:`~repro.netsim.engine.EventLoop`
        (only consumed by lossy/jittery links; the default zero-delay
        fabric draws nothing).
    interval:
        Round tick in seconds of virtual time.
    execution:
        An engine name registered with :mod:`repro.execution` —
        ``"event"`` (per-cell events/packets), ``"batch"`` (one
        :class:`CellBatch` per link per round), or ``"batch-v2"``
        (run-length :class:`~repro.netsim.rounds.CellVector`
        segments, shardable).
    observer:
        The tap attached to every link; defaults to a fresh global
        :class:`~repro.netsim.observer.LinkObserver`.  Further taps
        subscribe via :meth:`add_tap`.
    shards:
        Worker-process count for shardable engines; ``shards > 1``
        defers tap fan-out to :meth:`finalize` (run consumers call
        it before reading observations).
    shard_processes:
        ``None`` (default) uses real worker processes whenever
        ``shards > 1``; ``False`` runs the identical fan-out/merge
        inline (what property tests use); ``True`` requires a pool.
    """

    def __init__(self, *, seed: int = 0,
                 interval: float = DEFAULT_ROUND_INTERVAL_S,
                 execution: str = "event",
                 observer: Optional[LinkObserver] = None,
                 shards: Optional[int] = None,
                 shard_processes: Optional[bool] = None):
        spec = execution_registry.resolve(execution, shards)
        if spec.transport != "sim":
            raise ValueError(
                f"execution plane {spec.name!r} runs on the "
                f"{spec.transport!r} transport; build it through "
                f"repro.execution.create_wire_fabric, not "
                f"WireFabric")
        self.execution = spec.name
        self.wire_mode = spec.wire_mode
        self.shards = spec.shards
        self.shard_processes = shard_processes
        self.loop = EventLoop(seed=seed)
        self.scheduler = RoundScheduler(self.loop, interval)
        if self.wire_mode == "vector":
            self.scheduler.on_round(self._transmit_vector_queued)
        else:
            self.scheduler.on_round(self._transmit_queued)
        self.observer = observer if observer is not None \
            else LinkObserver()
        #: Every subscribed tap, adversary observer first; links fan
        #: out to all of them (see :mod:`repro.netsim.taps`).
        self.taps: List = [self.observer]
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._shard_plan = ShardPlan(self.shards)
        self._shard_buffers: List[List[ShardSegment]] = [
            [] for _ in range(self.shards)]
        self._next_slot = 0
        #: Unsharded vector mode accumulates cumulative per-link wire
        #: totals here (``[cells, bytes]`` per directed ``(src,
        #: dst)``); :meth:`finalize` applies them to the lazy
        #: topology in one pass.
        self._link_totals: Dict[Tuple[str, str], List[int]] = {}
        self._vector_segments = 0
        #: Wire-stat deltas from :meth:`finalize` whose link/node does
        #: not exist yet — the vector plane never *creates* topology
        #: just to hold counters; :meth:`link_between` / :meth:`node`
        #: drain these on first access.
        self._pending_link_stats: Dict[Tuple[str, str],
                                       List[int]] = {}
        self._pending_node_stats: Dict[str, List[int]] = {}
        self._finalized: Optional[Dict[str, object]] = None
        #: (src, dst) → queued (payload, kind, count) runs of the
        #: current round, in emission order (dict preserves insertion
        #: order).  ``count`` > 1 encodes a run of wire-identical
        #: cells sharing one payload reference (constant-rate fill).
        self._pending: Dict[Tuple[str, str],
                            List[Tuple[bytes, str, int]]] = {}
        self.rounds_flushed = 0
        self.cells_carried = 0
        #: Optional phase-profiler hook (duck-typed); install via
        #: :meth:`set_profiler` so the loop, scheduler, and every
        #: link — current and future — share one profiler.
        self.prof = None

    def set_profiler(self, prof) -> None:
        """Attach (or with ``None``, detach) a
        :class:`~repro.obs.prof.profiler.PhaseProfiler` across the
        whole fabric: the fabric itself (``deliver``), the loop and
        scheduler (``schedule``), and every link's observer fan-out
        (``adversary-observe``), including links created later."""
        self.prof = prof
        self.loop.prof = prof
        self.scheduler.prof = prof
        for link in self._links.values():
            link.prof = prof

    # -- lazy topology ---------------------------------------------------------

    def node(self, name: str) -> Node:
        """Get or create the named endpoint (a counting sink: the
        protocol runs in the zone; the fabric carries the wire
        image)."""
        found = self.nodes.get(name)
        if found is None:
            found = Node(name, self.loop)
            found.on_packet(_noop_packet)
            found.on_batch(_noop_batch)
            self.nodes[name] = found
            pending = self._pending_node_stats.pop(name, None)
            if pending is not None:
                found.packets_received += pending[0]
                found.bytes_received += pending[1]
        return found

    def link_between(self, a_name: str, b_name: str) -> Link:
        """Get or create the zero-delay logical link between two
        endpoints, with the fabric's observer attached."""
        key = (a_name, b_name) if a_name <= b_name \
            else (b_name, a_name)
        found = self._links.get(key)
        if found is None:
            found = Link(self.loop, self.node(key[0]),
                         self.node(key[1]))
            for tap in self.taps:
                found.add_observer(tap)
            if self.prof is not None:
                found.prof = self.prof
            self._links[key] = found
            for src, dst in (key, key[::-1]):
                pending = self._pending_link_stats.pop((src, dst),
                                                       None)
                if pending is not None:
                    stats = found.stats[src]
                    stats.packets += pending[0]
                    stats.bytes += pending[1]
        return found

    def add_tap(self, tap) -> None:
        """Subscribe a wire tap (any consumer of the public protocol
        in :mod:`repro.netsim.taps`) to every link — current and
        future — alongside the adversary observer."""
        self.taps.append(tap)
        for link in self._links.values():
            link.add_observer(tap)

    # -- emission --------------------------------------------------------------

    def emit(self, src: str, dst: str, payload: bytes,
             kind: str = "data") -> None:
        """Queue one cell for this round's flush (payload by
        reference)."""
        pending = self._pending
        entry = pending.get((src, dst))
        if entry is None:
            pending[(src, dst)] = [(payload, kind, 1)]
        else:
            entry.append((payload, kind, 1))

    def emit_repeated(self, src: str, dst: str, payload: bytes,
                      n: int, kind: str = "chaff") -> None:
        """Queue ``n`` wire-identical cells sharing one payload
        reference — the constant-rate fill of a trunk link costs one
        queue entry regardless of the cell count (the batch engine
        carries it via :meth:`CellBatch.append_repeated`; the event
        engine expands it to n packets, as it would have anyway)."""
        if n < 0:
            raise ValueError("cannot emit a negative cell count")
        if n:
            pending = self._pending
            entry = pending.get((src, dst))
            if entry is None:
                pending[(src, dst)] = [(payload, kind, n)]
            else:
                entry.append((payload, kind, n))

    def flush_round(self, round_index: int) -> None:
        """Transmit everything queued, stamped at the round's tick.

        Event engine: one transmission event per cell (plus one
        delivery event each) — the per-cell hot path this fabric
        exists to measure.  Batch engine: a single round event inside
        which every link's vector rides one
        :meth:`~repro.netsim.link.Link.transmit_batch` call.
        Either way the cells hit the links in identical order at the
        identical virtual time.
        """
        if self.wire_mode != "event":
            self.scheduler.run_round(round_index)
        else:
            prof = self.prof
            if prof is not None:
                prof.begin("deliver")
            before = self.cells_carried
            t = self.scheduler.time_of(round_index)
            loop = self.loop
            for (src, dst), runs in self._pending.items():
                link = self.link_between(src, dst)
                sender = self.nodes[src]
                for payload, kind, count in runs:
                    for _ in range(count):
                        packet = Packet(payload, src, dst, kind=kind)
                        loop.schedule_at(
                            t, lambda lk=link, s=sender, p=packet:
                            lk.transmit(s, p))
                    self.cells_carried += count
            self._pending.clear()
            loop.run(until=t)
            self.rounds_flushed += 1
            if prof is not None:
                prof.end(cells=self.cells_carried - before)

    def _transmit_queued(self, round_index: int) -> None:
        """Batch-engine round handler: one CellBatch per pending
        link, transmitted inline (zero delay → no extra events)."""
        prof = self.prof
        if prof is not None:
            prof.begin("deliver")
        before = self.cells_carried
        for (src, dst), runs in self._pending.items():
            link = self.link_between(src, dst)
            batch = CellBatch(src, dst, round_index)
            for payload, kind, count in runs:
                if count == 1:
                    batch.append(payload, kind=kind)
                else:
                    batch.append_repeated(payload, count, kind=kind)
            link.transmit_batch(self.nodes[src], batch)
            self.cells_carried += len(batch)
        self._pending.clear()
        self.rounds_flushed += 1
        if prof is not None:
            prof.end(cells=self.cells_carried - before)

    def _transmit_vector_queued(self, round_index: int) -> None:
        """Vector-engine round handler (``batch-v2``).

        Single-shard: the round's runs flatten into one run *table*
        (parallel ``keys``/``sizes``/``counts`` rows, link-contiguous
        in first-emission order) offered to every tap through
        :func:`~repro.netsim.taps.offer_round_runs` — aggregate chaff
        accounting with O(runs) work and a small constant.  Link and
        node wire stats materialize from the buffered tables at
        :meth:`finalize`, never per round.

        Sharded: the same aggregate images are buffered as
        :class:`~repro.netsim.shards.ShardSegment` records, each
        stamped with its global emission slot, and routed to shards
        by the deterministic :class:`~repro.netsim.shards.ShardPlan`;
        workers and the order-restoring merge run in
        :meth:`finalize`.  ``cells_carried`` stays eager either way.
        """
        prof = self.prof
        if prof is not None:
            prof.begin("deliver")
        before = self.cells_carried
        if self.shards > 1:
            t = self.scheduler.time_of(round_index)
            shard_of = self._shard_plan.shard_of
            buffers = self._shard_buffers
            for (src, dst), runs in self._pending.items():
                sizes = tuple(len(payload) + IP_UDP_HEADER_BYTES
                              for payload, _, _ in runs)
                counts = tuple(count for _, _, count in runs)
                buffers[shard_of(src, dst)].append(ShardSegment(
                    round_index=round_index, slot=self._next_slot,
                    time=t, src=src, dst=dst, sizes=sizes,
                    counts=counts))
                self._next_slot += 1
                self.cells_carried += sum(counts)
        else:
            t = self.scheduler.time_of(round_index)
            keys: List[Tuple[str, str]] = []
            sizes: List[int] = []
            counts: List[int] = []
            add_key = keys.append
            add_size = sizes.append
            add_count = counts.append
            totals = self._link_totals
            round_cells = 0
            for key, runs in self._pending.items():
                link_cells = 0
                link_bytes = 0
                for payload, _kind, count in runs:
                    size = len(payload) + IP_UDP_HEADER_BYTES
                    add_key(key)
                    add_size(size)
                    add_count(count)
                    link_cells += count
                    link_bytes += size * count
                entry = totals.get(key)
                if entry is None:
                    totals[key] = [link_cells, link_bytes]
                else:
                    entry[0] += link_cells
                    entry[1] += link_bytes
                round_cells += link_cells
            self.cells_carried += round_cells
            self._vector_segments += len(keys)
            if prof is not None:
                prof.begin("adversary-observe")
            for tap in self.taps:
                offer_round_runs(tap, t, keys, sizes, counts)
            if prof is not None:
                prof.end(cells=round_cells)
        self._pending.clear()
        self.rounds_flushed += 1
        if prof is not None:
            prof.end(cells=self.cells_carried - before)

    def finalize(self) -> Optional[Dict[str, object]]:
        """Complete the vector plane's deferred aggregate work.

        Sharded: fan buffered segment chunks out to workers and merge
        results in deterministic ``(round_index, slot)`` order into
        every tap.  Unsharded: publish the accumulated per-link
        totals (taps were already fed per round).  Both then apply
        the aggregate link/node stat deltas to *existing* topology;
        deltas for links/nodes nobody materialized stay pending and
        drain on first :meth:`link_between` / :meth:`node` access —
        stats are never a reason to allocate topology.

        Idempotent; a no-op (returns ``None``) for non-vector
        engines.  Run consumers call this before reading wire stats —
        and, under ``shards > 1``, before reading ``observer`` state,
        which exists only after the merge.
        """
        if self.wire_mode != "vector":
            return None
        if self._finalized is not None:
            return self._finalized
        prof = self.prof
        if self.shards > 1:
            chunks = [ShardChunk(shard_id=shard_id,
                                 segments=tuple(segs))
                      for shard_id, segs
                      in enumerate(self._shard_buffers) if segs]
            with ShardRunner(self.shards,
                             processes=self.shard_processes) as runner:
                results = runner.run(chunks)
            if prof is not None:
                prof.begin("adversary-observe")
            merged = merge_results(results, taps=self.taps)
            if prof is not None:
                prof.end(cells=merged["cells"])
            self._shard_buffers = [[] for _ in range(self.shards)]
        else:
            cells = n_bytes = 0
            link_stats: Dict[Tuple[str, str], Tuple[int, int]] = {}
            for key, (c, b) in self._link_totals.items():
                link_stats[key] = (c, b)
                cells += c
                n_bytes += b
            merged = {
                "cells": cells,
                "bytes": n_bytes,
                "segments": self._vector_segments,
                "link_stats": link_stats,
            }
            self._link_totals = {}
        for (src, dst), (cells, n_bytes) in \
                merged["link_stats"].items():
            canonical = (src, dst) if src <= dst else (dst, src)
            link = self._links.get(canonical)
            if link is not None:
                stats = link.stats[src]
                stats.packets += cells
                stats.bytes += n_bytes
            else:
                entry = self._pending_link_stats.get((src, dst))
                if entry is None:
                    self._pending_link_stats[(src, dst)] = [cells,
                                                            n_bytes]
                else:
                    entry[0] += cells
                    entry[1] += n_bytes
            receiver = self.nodes.get(dst)
            if receiver is not None:
                receiver.packets_received += cells
                receiver.bytes_received += n_bytes
            else:
                entry = self._pending_node_stats.get(dst)
                if entry is None:
                    self._pending_node_stats[dst] = [cells, n_bytes]
                else:
                    entry[0] += cells
                    entry[1] += n_bytes
        self._finalized = merged
        return merged

    # -- accounting ------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Heap events the wire plane cost so far — the quantity the
        batch engine exists to collapse."""
        return self.loop.events_processed

    def __repr__(self) -> str:
        return (f"WireFabric({self.execution}, "
                f"{self.rounds_flushed} rounds, "
                f"{self.cells_carried} cells, "
                f"{self.events_processed} events)")

"""Zone-level trace simulation: provisioning and rate epochs.

"We determine the peak number of calls and statically provision the
Herd topology of mixes and SPs accordingly so the network has enough
capacity to handle the peak call rate" (§4.1.2).

:func:`provision_zone` sizes a zone (channels, SPs, mixes) from a
trace's peak concurrency; :func:`rate_epoch_series` replays the trace
through a :class:`~repro.core.chaffing.RateController` at epoch
granularity, producing the provisioned-rate timeline that the cost
model charges for and demonstrating that rate changes are infrequent
("such changes take place at time scales of hours").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.chaffing import RateController
from repro.workload.cdr import CallTrace


@dataclass
class ProvisioningResult:
    """Static sizing of one zone for a workload."""

    n_users: int
    peak_calls: int
    peak_duty_cycle: float
    n_channels: int
    n_sps: int
    n_mixes: int

    @property
    def offload_factor(self) -> float:
        """n/a (§3.6): online clients over peak active calls — the
        upper bound on the SPs' bandwidth reduction."""
        if self.peak_calls == 0:
            return float(self.n_users)
        return self.n_users / self.peak_calls

    @property
    def bandwidth_reduction(self) -> float:
        """The reduction actually realized by this provisioning:
        clients over channels (channels cannot go below n/cpc)."""
        if self.n_channels == 0:
            return 1.0
        return self.n_users / self.n_channels


def provision_zone(trace: CallTrace, n_users: int,
                   clients_per_channel: int = 10,
                   clients_per_sp: int = 100,
                   channels_per_mix: int = 2000,
                   step: float = 60.0) -> ProvisioningResult:
    """Size a zone so C ≥ peak concurrent calls (§3.6.3: "the number of
    channels C per zone is chosen to exceed the expected number of
    active calls a within the zone during the busiest period")."""
    if n_users <= 0:
        raise ValueError("need a positive user count")
    peak = trace.peak_concurrency(step)
    # Channels must satisfy both the packing constraint (n / cpc) and
    # the capacity constraint (≥ peak calls).
    n_channels = max(peak, -(-n_users // clients_per_channel))
    n_sps = max(1, -(-n_users // clients_per_sp))
    n_mixes = max(1, -(-n_channels // channels_per_mix))
    return ProvisioningResult(
        n_users=n_users,
        peak_calls=peak,
        peak_duty_cycle=trace.peak_duty_cycle(n_users, step),
        n_channels=n_channels,
        n_sps=n_sps,
        n_mixes=n_mixes,
    )


def rate_epoch_series(trace: CallTrace, epoch_seconds: float = 3600.0,
                      controller: Optional[RateController] = None
                      ) -> List[Tuple[int, float, int]]:
    """Replay a trace through a rate controller at epoch granularity.

    Returns one ``(epoch, peak_load, provisioned_rate)`` tuple per
    epoch.  The controller sees each epoch's *peak* concurrent calls
    (links must carry the worst minute) and decides the next rate.
    """
    controller = controller or RateController()
    profile = trace.concurrency_profile(step=60.0)
    per_epoch = max(1, int(epoch_seconds // 60.0))
    series: List[Tuple[int, float, int]] = []
    for epoch, start in enumerate(range(0, len(profile), per_epoch)):
        peak_load = float(profile[start:start + per_epoch].max()) \
            if len(profile[start:start + per_epoch]) else 0.0
        rate = controller.on_epoch(epoch, peak_load)
        series.append((epoch, peak_load, rate))
    return series


def interzone_traffic_matrix(trace: CallTrace, n_zones: int,
                             interzone_fraction: Optional[float] = None
                             ) -> np.ndarray:
    """Split a trace's call volume across zone pairs.

    Users are assigned to zones by id hash; entry (i, j) counts calls
    between zones i and j.  If ``interzone_fraction`` is given, callees
    are instead re-assigned so that exactly that fraction of calls
    crosses zones (the §4.1.6 sweep's knob).
    """
    if n_zones < 1:
        raise ValueError("need at least one zone")
    matrix = np.zeros((n_zones, n_zones), dtype=np.int64)
    acc = 0.0
    for idx, record in enumerate(trace.records):
        zi = record.caller % n_zones
        if interzone_fraction is None:
            zj = record.callee % n_zones
        else:
            # Bresenham-style accumulator: exactly the requested
            # fraction crosses zones, with no modulo bias.
            acc += interzone_fraction
            crosses = acc >= 1.0
            if crosses:
                acc -= 1.0
            zj = (zi + 1) % n_zones if crosses and n_zones > 1 else zi
        matrix[min(zi, zj), max(zi, zj)] += 1
    return matrix

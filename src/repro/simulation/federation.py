"""Federated Herd: the complete inter-zone data path, end to end.

Combines every mechanism of the system into one executable scenario —
the paper's "up to seven [hops] if optional SPs are used" path:

    caller → SP → mix_A  ⇒ (circuit splice) ⇒  mix_B → SP → callee

* The caller and callee sit *behind superpeers* in different zones:
  their packets ride chaffed channels, get XOR-combined by the SP, and
  decoded by the mix (§3.6).
* The payload each frame is a real **onion cell**: the caller wraps the
  end-to-end-encrypted frame in its circuit's layers; the caller's mix
  peels its layer and hands the raw e2e payload across the rendezvous
  splice; the callee's mix adds its backward layer and enqueues the
  cell as a downstream VOIP packet on the callee's channel (§3.2–3.3).
* The callee's client trial-decrypts the downstream packet, strips the
  backward layers, and decrypts the end-to-end AEAD (§3.6.2).

Frames carry an explicit sequence number next to the cell (sequence
numbers, like circuit IDs, travel outside layered encryption, §3.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.callmanager import CallState
from repro.core.client import HerdClient
from repro.core.rendezvous import CallError
from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.kdf import derive_keys
from repro.crypto.onion import (
    CELL_SIZE,
    unwrap_backward,
    wrap_onion,
)
from repro.crypto.x25519 import X25519PrivateKey
from repro.simulation.live import LiveZone
from repro.simulation.testbed import HerdTestbed, build_testbed

_SEQ = struct.Struct("<Q")


@dataclass
class FederatedEndpoint:
    """One side of a federated call."""

    zone: LiveZone
    client_id: str
    send_seq: int = 0
    received_frames: List[bytes] = field(default_factory=list)

    @property
    def client(self) -> HerdClient:
        return self.zone.clients[self.client_id].client

    @property
    def numeric_id(self) -> int:
        return self.zone.clients[self.client_id].numeric_id


class FederatedHerd:
    """Two live zones sharing one PKI, connected by the mix mesh."""

    def __init__(self, n_clients_per_zone: int = 6, n_channels: int = 3,
                 k: int = 2, seed: int = 20150817):
        self.bed: HerdTestbed = build_testbed(
            [("zone-EU", "dc-eu", 1), ("zone-NA", "dc-na", 1)],
            seed=seed)
        self.zones: Dict[str, LiveZone] = {}
        for zone_id, prefix in (("zone-EU", "eu"), ("zone-NA", "na")):
            zone = LiveZone(n_clients=n_clients_per_zone,
                            n_channels=n_channels, k=k, seed=seed,
                            bed=self.bed, zone_id=zone_id,
                            client_prefix=prefix)
            zone.external_router = self._make_router(zone_id)
            self.zones[zone_id] = zone
        self.calls: List[FederatedCall] = []
        self._route: Dict[Tuple[str, int], FederatedCall] = {}

    def _make_router(self, zone_id: str):
        def route(numeric_id: int, payload: bytes) -> None:
            call = self._route.get((zone_id, numeric_id))
            if call is not None:
                call.on_upstream(zone_id, numeric_id, payload)
        return route

    def step(self) -> None:
        for zone in self.zones.values():
            zone.step()

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    def call(self, caller: Tuple[str, str],
             callee: Tuple[str, str]) -> "FederatedCall":
        """Establish a federated call: ``caller``/``callee`` are
        (zone_id, client_id) pairs."""
        call = FederatedCall(
            self,
            FederatedEndpoint(self.zones[caller[0]], caller[1]),
            FederatedEndpoint(self.zones[callee[0]], callee[1]))
        call.establish()
        self.calls.append(call)
        key_a = (caller[0], call.caller.numeric_id)
        key_b = (callee[0], call.callee.numeric_id)
        self._route[key_a] = call
        self._route[key_b] = call
        return call


class FederatedCall:
    """A call across zones, SP channels on both ends."""

    def __init__(self, net: FederatedHerd, caller: FederatedEndpoint,
                 callee: FederatedEndpoint):
        self.net = net
        self.caller = caller
        self.callee = callee
        self._aead: Dict[str, ChaCha20Poly1305] = {}
        self.established = False

    # -- setup -------------------------------------------------------------------

    def establish(self) -> None:
        """Control plane: circuits, rendezvous splice, channel grants,
        and the end-to-end key (negotiated out of band here — the
        in-band version is exercised by CallSession)."""
        service = self.net.bed.service
        caller_client = self.caller.client
        callee_client = self.callee.client
        # Standing circuits through each party's own zone mix.
        service.build_standing_circuit(caller_client)
        service.build_standing_circuit(callee_client)
        service.register_callee(callee_client)
        # Splice at the two rendezvous mixes.
        rdv_c = self.net.bed.mixes[caller_client.circuit.rendezvous_mix]
        rdv_e = self.net.bed.mixes[callee_client.circuit.rendezvous_mix]
        rdv_c.splice(caller_client.circuit.circuit_id, rdv_e.mix_id,
                     callee_client.circuit.circuit_id)
        rdv_e.splice(callee_client.circuit.circuit_id, rdv_c.mix_id,
                     caller_client.circuit.circuit_id)
        # Channel allocation on both sides (signal + incoming).
        caller_zone = self.caller.zone
        callee_zone = self.callee.zone
        caller_zone.clients[self.caller.client_id].agent.start_outgoing()
        caller_zone.run(2)
        callee_zone.manager.place_incoming(self.callee.numeric_id)
        callee_zone.run(2)
        if caller_zone.state_of(self.caller.client_id) is not \
                CallState.IN_CALL:
            raise CallError("caller was not granted a channel")
        if callee_zone.state_of(self.callee.client_id) is not \
                CallState.IN_CALL:
            raise CallError("callee did not receive the incoming call")
        # End-to-end keys.
        eph_a = X25519PrivateKey.generate(self.net.bed.rng)
        eph_b = X25519PrivateKey.generate(self.net.bed.rng)
        shared = eph_a.exchange(eph_b.public_bytes)
        keys = derive_keys(shared,
                           ("caller_to_callee", "callee_to_caller"),
                           context=eph_a.public_bytes
                           + eph_b.public_bytes)
        self._aead = {d: ChaCha20Poly1305(k) for d, k in keys.items()}
        self.established = True

    # -- voice --------------------------------------------------------------------

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return b"fed\x00" + _SEQ.pack(seq)

    def say(self, direction: str, frame: bytes) -> None:
        """Queue one voice frame into the sender's SP channel: e2e
        encrypt, wrap the onion, prepend the sequence number."""
        if not self.established:
            raise CallError("call not established")
        sender = (self.caller if direction == "caller_to_callee"
                  else self.callee)
        seq = sender.send_seq
        sender.send_seq += 1
        ciphertext = self._aead[direction].encrypt(self._nonce(seq),
                                                   frame)
        cell = wrap_onion(sender.client.circuit.keys, ciphertext, seq)
        sender.zone.say(sender.client_id, _SEQ.pack(seq) + cell)

    def on_upstream(self, zone_id: str, numeric_id: int,
                    payload: bytes) -> None:
        """The sender's mix recovered a channel payload for this call:
        push it through the circuit splice to the receiver's channel."""
        seq = _SEQ.unpack(payload[:_SEQ.size])[0]
        cell = payload[_SEQ.size:_SEQ.size + CELL_SIZE]
        if numeric_id == self.caller.numeric_id:
            sender, receiver = self.caller, self.callee
        else:
            sender, receiver = self.callee, self.caller
        mixes = self.net.bed.mixes
        circuit_id = sender.client.circuit.circuit_id
        action = mixes[sender.client.circuit.entry_mix].forward_cell(
            circuit_id, cell, seq)
        while action.kind == "forward":
            action = mixes[action.peer].forward_cell(circuit_id,
                                                     action.data, seq)
        if action.kind != "to_peer_mix":
            raise CallError(f"unexpected relay action {action.kind}")
        peer_mix = mixes[action.peer]
        back = peer_mix.inject_backward(action.peer_circuit,
                                        action.data, seq)
        # Walk any remaining backward hops toward the receiver's mix.
        path = receiver.client.circuit.path
        idx = path.index(peer_mix.mix_id)
        for mix_id in reversed(path[:idx]):
            back = mixes[mix_id].backward_cell(
                receiver.client.circuit.circuit_id, back.data, seq)
        # The receiver is behind an SP: deliver the layered cell as a
        # downstream VOIP payload on its granted channel.
        receiver.zone.manager.enqueue_voice(
            receiver.numeric_id, _SEQ.pack(seq) + back.data)

    def drain_received(self) -> None:
        """Decrypt everything the receivers' agents picked up."""
        for endpoint, direction in ((self.callee, "caller_to_callee"),
                                    (self.caller, "callee_to_caller")):
            agent = endpoint.zone.clients[endpoint.client_id].agent
            while agent.received_cells:
                payload = agent.received_cells.pop(0)
                seq = _SEQ.unpack(payload[:_SEQ.size])[0]
                cell = payload[_SEQ.size:_SEQ.size + CELL_SIZE]
                ciphertext = unwrap_backward(
                    endpoint.client.circuit.keys, cell, seq)
                frame = self._aead[direction].decrypt(
                    self._nonce(seq), ciphertext)
                endpoint.received_frames.append(frame)

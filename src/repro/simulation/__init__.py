"""Trace-driven and packet-level simulations of Herd deployments.

* :mod:`repro.simulation.spsim` — the §4.1.6 superpeer simulations:
  channel allocation, call blocking, and mix offload driven by a call
  trace ("we aggregate the call start and end times into one-minute
  bins to improve the runtime of our simulations").
* :mod:`repro.simulation.herd_sim` — zone-level trace simulation:
  provisioning, rate-controller epochs, inter-zone traffic matrices.
* :mod:`repro.simulation.deployment` — a packet-level 4-zone
  deployment on the network simulator with EC2 geography: the
  prototype-evaluation substitute behind Fig. 7 and the
  traffic-analysis experiments.
"""

from repro.simulation.spsim import (
    BlockingResult,
    SPSimConfig,
    simulate_blocking,
)
from repro.simulation.herd_sim import (
    provision_zone,
    rate_epoch_series,
)
from repro.simulation.deployment import (
    DeploymentConfig,
    measure_pair_latencies,
)
from repro.simulation.testbed import HerdTestbed, build_testbed
from repro.simulation.live import LiveZone
from repro.simulation.roundsync import WireFabric
from repro.simulation.wired import WiredConfig, WiredHerd
from repro.simulation.federation import FederatedHerd
from repro.simulation.churn import (
    AvailabilityModel,
    fail_mix,
    fail_superpeer,
    recover_mix,
    recover_superpeer,
    rejoin_clients,
)
from repro.simulation.chaos import (
    ChaosConfig,
    ChaosReport,
    blacklist_plan,
    default_plan,
    run_chaos,
)

# ProvisioningResult, LatencyMeasurement, and RejoinStats are result
# records of their entry points, not standalone API — import them from
# their defining modules.
__all__ = [
    "BlockingResult",
    "SPSimConfig",
    "simulate_blocking",
    "provision_zone",
    "rate_epoch_series",
    "DeploymentConfig",
    "measure_pair_latencies",
    "HerdTestbed",
    "build_testbed",
    "LiveZone",
    "WireFabric",
    "WiredConfig",
    "WiredHerd",
    "FederatedHerd",
    "AvailabilityModel",
    "fail_mix",
    "fail_superpeer",
    "recover_mix",
    "recover_superpeer",
    "rejoin_clients",
    "ChaosConfig",
    "ChaosReport",
    "blacklist_plan",
    "default_plan",
    "run_chaos",
]

"""Trace-driven superpeer simulations (§4.1.6).

"We ran SP simulations with 100 SPs per mix and 100 clients per SP, and
varied the number of clients per channel (between 5 and 50) and the
number of channels each client attaches to (2 and 3).  A call is
blocked if there are no available channels at the caller or callee's
end.  In our simulations, the blocking rate for 2 channels varied
between 5% and 0.1% with 50 and 5 clients per channel, respectively.
We observed that the average blocking rate decreased by an order of
magnitude when clients attached to 3 channels instead of 2."

:func:`simulate_blocking` replays a call trace against the static
channel assignment and the RANKING matcher, exactly the §3.6.3
machinery, binning start/end times ("one-minute bins") as the paper
does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.allocation import (
    FirstFitMatcher,
    RankingMatcher,
    assign_clients_to_channels,
)
from repro.workload.cdr import CallTrace


@dataclass
class SPSimConfig:
    """Parameters of one blocking simulation."""

    n_clients: int
    clients_per_channel: int = 10
    k: int = 2
    bin_width: float = 60.0
    seed: int = 0
    matcher: str = "ranking"  # or "first-fit" (ablation)

    @property
    def n_channels(self) -> int:
        return max(self.k, -(-self.n_clients // self.clients_per_channel))


@dataclass
class BlockingResult:
    """Outcome of one blocking simulation."""

    config: SPSimConfig
    calls_attempted: int
    calls_blocked: int
    peak_channels_in_use: int

    @property
    def blocking_rate(self) -> float:
        if self.calls_attempted == 0:
            return 0.0
        return self.calls_blocked / self.calls_attempted

    @property
    def offered_savings(self) -> float:
        """Mix client-side bandwidth saved vs direct connections:
        1 − C/n (the §4.1.6 "savings" metric)."""
        return 1.0 - self.config.n_channels / self.config.n_clients


def simulate_blocking(trace: CallTrace, config: SPSimConfig
                      ) -> BlockingResult:
    """Replay a trace against a static channel assignment.

    Calls are processed in (binned) start-time order; a call needs a
    free channel at the caller *and* at the callee ("a call is blocked
    if there are no available channels at the caller or callee's end").
    Ends are processed before starts within a bin, matching the paper's
    binned methodology.
    """
    rng = random.Random(config.seed)
    assignment = assign_clients_to_channels(
        config.n_clients, config.n_channels, config.k, rng)
    matcher_cls = {"ranking": RankingMatcher,
                   "first-fit": FirstFitMatcher}[config.matcher]
    # Caller and callee draw from disjoint channel pools in our model
    # (they attach to different mixes in general); one matcher per side
    # keeps the two ends' constraints independent, as in the paper.
    caller_side = matcher_cls(assignment, random.Random(config.seed + 1))
    callee_side = matcher_cls(assignment, random.Random(config.seed + 2))

    events: List[Tuple[int, int, int, int, int]] = []
    start_bins, end_bins = trace.binned_events(config.bin_width)
    for i, record in enumerate(trace.records):
        caller = record.caller % config.n_clients
        callee = record.callee % config.n_clients
        if caller == callee:
            continue
        events.append((int(start_bins[i]), 1, i, caller, callee))
        events.append((int(end_bins[i]) + 1, 0, i, caller, callee))
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    attempted = blocked = 0
    peak = 0
    active: Dict[int, Tuple[int, int]] = {}
    busy_users = set()
    for _bin, kind, call_idx, caller, callee in events:
        if kind == 0:  # end
            if call_idx in active:
                caller_side.release(caller)
                callee_side.release(callee)
                busy_users.discard(caller)
                busy_users.discard(callee)
                del active[call_idx]
            continue
        if caller in busy_users or callee in busy_users:
            # A binning artifact (the trace has no per-user overlap):
            # the participant's previous call ends later in this bin.
            # Not a channel-availability event, so not counted.
            continue
        attempted += 1
        ch_caller = caller_side.try_allocate(caller)
        if ch_caller is None:
            blocked += 1
            continue
        ch_callee = callee_side.try_allocate(callee)
        if ch_callee is None:
            caller_side.release(caller)
            blocked += 1
            continue
        active[call_idx] = (caller, callee)
        busy_users.add(caller)
        busy_users.add(callee)
        peak = max(peak, caller_side.channels_in_use)
    return BlockingResult(
        config=config,
        calls_attempted=attempted,
        calls_blocked=blocked,
        peak_channels_in_use=peak,
    )


def blocking_sweep(trace: CallTrace, n_clients: int,
                   clients_per_channel_values=(5, 10, 25, 50),
                   k_values=(2, 3), seed: int = 0
                   ) -> Dict[Tuple[int, int], BlockingResult]:
    """The paper's parameter sweep: blocking rate for every
    (clients/channel, k) combination."""
    results = {}
    for cpc in clients_per_channel_values:
        for k in k_values:
            config = SPSimConfig(n_clients=n_clients,
                                 clients_per_channel=cpc, k=k,
                                 seed=seed)
            results[(cpc, k)] = simulate_blocking(trace, config)
    return results

"""A live, round-based Herd zone: the full SP data plane in motion.

Runs one zone's complete data path at codec-frame granularity, with
every mechanism of §3.4 and §3.6 active each round:

* every client emits one encrypted packet + manifest per attached
  channel (payload only on its call's channel, chaff elsewhere),
* each SP XOR-combines its channels' packets and forwards them with
  the manifest lists,
* the mix decrypts manifests, decodes the XOR rounds, reacts to
  signaling bits (RANKING allocation + GRANT), routes recovered voice
  cells to their destination call, and produces the downstream round
  (GRANT / INCOMING / VOIP / chaff),
* SPs broadcast downstream packets to every channel member; each
  client trial-decrypts everything.

Calls between two clients of the zone loop through the mix
(caller channel → mix → callee channel), which is exactly the intra-mix
segment of a Herd circuit; the integration test splices this onto the
inter-mix rendezvous path.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro import execution as execution_registry
from repro.core.transport import CellTransport
from repro.core.callmanager import CallState, ClientCallAgent, \
    FailoverRecord, MixCallManager
from repro.core.channel import decode_manifest
from repro.core.join import join_zone
from repro.core.client import HerdClient
from repro.core.shedding import LoadShedder
from repro.simulation.roundsync import DEFAULT_ROUND_INTERVAL_S
from repro.simulation.testbed import HerdTestbed, build_testbed


@dataclass
class LiveClient:
    """A client plus its call agent and voice queues."""

    client: HerdClient
    agent: ClientCallAgent
    outbox: Deque[bytes] = field(default_factory=deque)

    @property
    def numeric_id(self) -> int:
        return self.client.numeric_id


class LiveZone:
    """One zone running live rounds.

    All parameters are keyword-only (positional forms were removed
    with the PR-3 deprecation cycle).  ``execution`` is any engine
    name registered with :mod:`repro.execution`; ``shards`` applies
    to shardable engines (``batch-v2``) and flows into the wire
    plane created by :meth:`attach_wire`."""

    def __init__(self, *, n_clients: int = 12, n_channels: int = 4,
                 k: int = 2, n_sps: int = 1,
                 seed: int = 20150817,
                 bed: Optional[HerdTestbed] = None,
                 zone_id: str = "zone-EU",
                 client_prefix: str = "client",
                 execution: str = "event",
                 shards: Optional[int] = None,
                 shard_processes: Optional[bool] = None,
                 net_processes: Optional[bool] = None):
        if n_sps < 1:
            raise ValueError("need at least one superpeer")
        if n_sps > n_channels:
            raise ValueError("cannot have more SPs than channels")
        plane_spec = execution_registry.resolve(execution, shards)
        self.execution = plane_spec.name
        self.zone_mode = plane_spec.zone_mode
        self.transport = plane_spec.transport
        self.shards = plane_spec.shards
        self.shard_processes = shard_processes
        self.net_processes = net_processes
        self.seed = seed
        #: Optional wire plane (see :meth:`attach_wire`): when set,
        #: every round's cells are offered to tapped netsim links
        #: (``"sim"`` transports) or carried as real loopback
        #: datagrams (the ``asyncio`` plane) under the zone's
        #: execution engine.
        self.wire: Optional[CellTransport] = None
        if bed is None:
            bed = build_testbed([(zone_id, "dc-eu", 1)], seed=seed)
        self.bed: HerdTestbed = bed
        self.zone_id = zone_id
        self.client_prefix = client_prefix
        self.mix = self.bed.mixes[f"{zone_id}/mix-0"]
        self.mix.configure_channels(n_channels)
        # Channels are partitioned round-robin across the zone's SPs
        # (the paper runs "100 SPs per mix"; Fig. 3 shows one channel
        # per SP as the extreme case).
        self.sps = [self.bed.add_superpeer(
            f"{zone_id}/sp-{i}", self.mix.mix_id,
            channels=range(i, n_channels, n_sps))
            for i in range(n_sps)]
        self.sp = self.sps[0]  # backward-compatible alias
        self._sp_of_channel = {ch: sp for sp in self.sps
                               for ch in sp.channel_clients}
        self.manager = MixCallManager(self.mix,
                                      random.Random(seed))
        self.clients: Dict[str, LiveClient] = {}
        self._by_numeric: Dict[int, LiveClient] = {}
        #: numeric id → numeric id of the call peer (both directions).
        self.peers: Dict[int, int] = {}
        #: Optional hook for cross-zone routing: called with
        #: (numeric_id, payload) for voice recovered from clients whose
        #: call peer is not local (see simulation.federation).
        self.external_router = None
        self.round_index = 0
        self.rng = random.Random(seed + 1)
        #: Overload admission control (None = no shedding).  Installed
        #: by :meth:`set_overload` for an OVERLOAD fault window; totals
        #: survive the window in :attr:`shed_stats`.
        self.shedder: Optional[LoadShedder] = None
        #: Cumulative graceful-degradation accounting across windows.
        self.shed_stats: Dict[str, int] = {
            "windows": 0, "cells_deferred": 0, "cells_admitted": 0}
        #: Optional observability hook (see :class:`repro.obs
        #: .instrument.LiveZoneHook`): call-setup spans and round
        #: progress, installed by ``Herdscope.attach_live_zone``.
        self.obs = None
        #: Optional phase-profiler hook (duck-typed, like ``obs``);
        #: installed by :meth:`repro.obs.prof.profiler.PhaseProfiler
        #: .attach_zone`.  Buckets the round engine into the ``chaff``
        #: / ``mix-forward`` / ``deliver`` phases (DESIGN.md §11).
        self.prof = None
        for i in range(n_clients):
            self._add_client(f"{client_prefix}-{i}", k)

    def _add_client(self, client_id: str, k: int) -> LiveClient:
        client = HerdClient(client_id, self.zone_id, rng=self.bed.rng,
                            k=k)
        zone_sps = {sp_id: sp for sp_id, sp
                    in self.bed.superpeers.items()
                    if sp.mix_id == self.mix.mix_id}
        join_zone(client, self.bed.directories[self.zone_id],
                  {self.mix.mix_id: self.mix}, superpeers=zone_sps,
                  rng=self.bed.rng)
        slots = {a.channel_id: a.slot for a in client.attachments}
        self.manager.register_client(client_id, client.numeric_id,
                                     slots)
        live = LiveClient(client=client,
                          agent=ClientCallAgent(client))
        self.clients[client_id] = live
        self._by_numeric[client.numeric_id] = live
        self.bed.clients[client_id] = client
        return live

    # -- call control ----------------------------------------------------------

    def start_call(self, caller_id: str, callee_id: str) -> None:
        """The caller signals; once granted, the mix rings the callee
        and the two calls are bridged at the mix."""
        caller = self.clients[caller_id]
        callee = self.clients[callee_id]
        caller.agent.start_outgoing()
        self.peers[caller.numeric_id] = callee.numeric_id
        self.peers[callee.numeric_id] = caller.numeric_id
        if self.obs is not None:
            self.obs.call_started(caller_id, callee_id)

    def hang_up(self, client_id: str) -> None:
        live = self.clients[client_id]
        peer_numeric = self.peers.pop(live.numeric_id, None)
        self.manager.end_call(live.numeric_id)
        live.agent.hang_up()
        if self.obs is not None:
            self.obs.call_ended(client_id)
        if peer_numeric is not None:
            peer = self._by_numeric[peer_numeric]
            self.peers.pop(peer_numeric, None)
            self.manager.end_call(peer_numeric)
            peer.agent.hang_up()
            if self.obs is not None:
                self.obs.call_ended(peer.client.client_id)

    def say(self, client_id: str, cell: bytes) -> None:
        """Queue a voice cell for the client's active call."""
        self.clients[client_id].outbox.append(cell)

    # -- failures and mid-call failover (§3.6.4) -------------------------------

    def fail_superpeer(self, sp_id: str) -> List[FailoverRecord]:
        """Take one of the zone's SPs down mid-run.

        The bed-level failure (:func:`repro.simulation.churn.
        fail_superpeer` with ``full_leave=False``) sheds the dead
        attachments; the data plane then re-allocates every active call
        leg that was on one of the SP's channels to a surviving channel
        (the re-GRANT rides the next downstream round) and hangs up
        legs with nowhere to go — along with their peers.
        """
        from repro.simulation.churn import fail_superpeer as _fail_sp
        sp = next((s for s in self.sps if s.sp_id == sp_id), None)
        if sp is None:
            raise KeyError(f"superpeer {sp_id} is not part of this zone")
        _fail_sp(self.bed, sp_id, full_leave=False)
        return self.absorb_superpeer_failure(sp)

    def absorb_superpeer_failure(self, sp) -> List[FailoverRecord]:
        """Data-plane half of an SP failure whose bed-level removal
        already happened (fault injector, blacklist reaction): stop
        running the SP's channels, fail the channels over at the call
        manager, and tear down dropped legs with their peers."""
        dead_channels = set(sp.channel_clients)
        if sp in self.sps:
            self.sps.remove(sp)
        for channel_id in dead_channels:
            self._sp_of_channel.pop(channel_id, None)
        records = self.manager.fail_channels(dead_channels)
        for record in records:
            if record.new_channel is None:
                live = self._by_numeric.get(record.numeric_id)
                if live is not None:
                    self.hang_up(live.client.client_id)
        return records

    # -- overload & graceful degradation (§3.4.2) ------------------------------

    def set_overload(self, capacity_fraction: float,
                     sp_id: Optional[str] = None) -> LoadShedder:
        """Enter an overload window: from the next round on, each
        channel admits only ``capacity_fraction`` of its members'
        payload cells per round; the rest stay queued in the clients'
        outboxes (backpressure, not loss).  The wire image is
        unchanged — chaff replaces the deferred payload — so an
        adversary cannot see the overload (I6/I7)."""
        self.shedder = LoadShedder(capacity_fraction, sp_id=sp_id)
        self.shed_stats["windows"] += 1
        return self.shedder

    def clear_overload(self) -> None:
        """Leave the overload window; cumulative counts remain in
        :attr:`shed_stats`."""
        shedder = self.shedder
        if shedder is not None:
            self.shed_stats["cells_deferred"] += shedder.cells_deferred
            self.shed_stats["cells_admitted"] += shedder.cells_admitted
        self.shedder = None

    @property
    def cells_deferred(self) -> int:
        """Total payload cells deferred by shedding so far (including
        any still-open overload window)."""
        live = self.shedder.cells_deferred if self.shedder else 0
        return self.shed_stats["cells_deferred"] + live

    # -- the round engine ------------------------------------------------------

    def _upstream(self) -> None:
        for channel_id, sp in sorted(self._sp_of_channel.items()):
            self._upstream_channel(channel_id, sp)

    def _gather_channel(self, channel_id: int, sp):
        """Collect one channel's round of client emissions, in slot
        order (payload only where a call is live on this channel).

        Under an overload window (:meth:`set_overload`) payload
        admission is capped per channel per round in strict slot
        order; deferred cells stay queued (client backpressure) and a
        chaff cell rides the wire in their place, so emission stays
        constant-rate.  Both engines call this in the same sorted
        channel / slot order, so shedding is engine-equivalent."""
        members = sp.channel_clients[channel_id]
        packets, manifests = [], []
        shedder = self.shedder
        budget = None
        if shedder is not None and shedder.applies_to(sp.sp_id):
            budget = shedder.channel_budget(len(members))
        admitted = 0
        for client_id in members:
            live = self.clients[client_id]
            attachment = next(a for a in live.client.attachments
                              if a.channel_id == channel_id)
            payload = None
            if live.agent.state is CallState.IN_CALL and \
                    live.agent.active_channel == channel_id and \
                    live.outbox:
                if budget is not None and admitted >= budget:
                    shedder.defer()
                else:
                    payload = live.outbox.popleft()
                    admitted += 1
                    if budget is not None:
                        shedder.admit()
            pkt, manifest = live.client.upstream_packet(attachment,
                                                        payload)
            packets.append(pkt)
            manifests.append(manifest)
        return members, packets, manifests

    def _decode_entries(self, channel_id: int, up) -> List[tuple]:
        """Mix-side manifest decryption for one combined round."""
        entries = []
        for slot, raw in enumerate(up.manifests):
            client_id = self.mix.client_at_slot(channel_id, slot)
            key = self.mix.client_keys[client_id]
            numeric = self.mix.channels[channel_id].members[slot]
            live = self.clients[client_id]
            attachment = next(a for a in live.client.attachments
                              if a.channel_id == channel_id)
            m = decode_manifest(raw, key, slot,
                                expected_sequence=attachment.sequence
                                - 1)
            entries.append((numeric, m.sequence, m.signal))
        return entries

    def _emit_upstream(self, sp, members, packets, up) -> None:
        """Offer one channel's upstream cells to the wire plane:
        each member's packet on its client↔SP link, then the combined
        XOR round on the SP↔mix link."""
        if self.wire is None:
            return
        for client_id, pkt in zip(members, packets):
            self.wire.emit(client_id, sp.sp_id, pkt, kind="up")
        self.wire.emit(sp.sp_id, self.mix.mix_id, up.xor_packet,
                       kind="xor")

    def _upstream_channel(self, channel_id: int, sp) -> None:
        prof = self.prof
        if prof is not None:
            prof.begin("chaff")
        members, packets, manifests = self._gather_channel(channel_id,
                                                           sp)
        if prof is not None:
            prof.end(cells=len(packets))
        if not packets:
            return
        if prof is not None:
            prof.begin("mix-forward")
        up = sp.combine_upstream(channel_id, self.round_index,
                                 packets, manifests)
        self._emit_upstream(sp, members, packets, up)
        entries = self._decode_entries(channel_id, up)
        active, payload = self.manager.process_upstream(
            channel_id, up.xor_packet, entries)
        if active is not None and payload:
            self._route_voice(active, payload)
        if prof is not None:
            prof.end(cells=len(packets))

    def _route_voice(self, from_numeric: int, cell: bytes) -> None:
        """Bridge a recovered voice cell to the peer's call (the
        intra-mix segment of the circuit).  Upstream payloads are
        zero-padded to the coded-packet capacity; the voice unit inside
        is a fixed-size circuit cell, so the mix forwards exactly
        CELL_SIZE bytes."""
        from repro.crypto.onion import CELL_SIZE
        peer_numeric = self.peers.get(from_numeric)
        if peer_numeric is None:
            if self.external_router is not None:
                self.external_router(from_numeric, cell)
            return
        if peer_numeric in self.manager.calls:
            self.manager.enqueue_voice(peer_numeric, cell[:CELL_SIZE])

    def _ring_pending_callees(self) -> None:
        """Once a caller's channel is granted, place the incoming leg
        at the callee (the rendezvous would normally carry this)."""
        for numeric, peer in list(self.peers.items()):
            caller = self._by_numeric[numeric]
            callee = self._by_numeric[peer]
            if caller.agent.state is CallState.IN_CALL and \
                    callee.agent.state is CallState.IDLE and \
                    peer not in self.manager.calls:
                self.manager.place_incoming(peer)

    def _deliver_downstream(self, round_packets: Dict[int, bytes]
                            ) -> None:
        """Broadcast one downstream round to every channel member
        (shared by both engines, so the wire image and client-side
        processing are identical by construction)."""
        prof = self.prof
        if prof is not None:
            prof.begin("deliver")
        cells = 0
        for channel_id, packet in round_packets.items():
            sp = self._sp_of_channel[channel_id]
            if self.wire is not None:
                self.wire.emit(self.mix.mix_id, sp.sp_id, packet,
                               kind="down")
            cells += 1
            for client_id, pkt in sp.broadcast_downstream(
                    channel_id, packet):
                if self.wire is not None:
                    self.wire.emit(sp.sp_id, client_id, pkt,
                                   kind="bcast")
                cells += 1
                live = self.clients[client_id]
                evt = live.agent.process_downstream(channel_id,
                                                    self.round_index,
                                                    pkt)
                if self.obs is not None and evt is not None:
                    self.obs.client_event(client_id, evt)
        if prof is not None:
            prof.end(cells=cells)

    def _downstream(self) -> None:
        self._deliver_downstream(
            self.manager.downstream_round(self.round_index))

    def _step_batch(self) -> None:
        """The round-synchronous engine: the same round as the
        per-channel path, through the core batch entry points.

        Equivalence to the event path (DESIGN.md §9) holds because the
        hot-path state is factored exactly along the batch seams:
        client emission is gathered in the same sorted-channel /
        slot order, SP combining is per-channel pure (grouping the
        calls per SP cannot change any output), manifests decode from
        per-attachment sequence counters, and the call manager ingests
        channels in sorted order — the same interleaving of rng draws,
        GRANT queueing, and voice routing as per-channel calls.
        """
        prof = self.prof
        gathered = {}
        if prof is not None:
            prof.begin("chaff")
        for channel_id, sp in sorted(self._sp_of_channel.items()):
            members, packets, manifests = self._gather_channel(
                channel_id, sp)
            if packets:
                gathered[channel_id] = (sp, members, packets,
                                        manifests)
        if prof is not None:
            prof.end(cells=sum(len(g[2]) for g in gathered.values()))
            prof.begin("mix-forward")
        per_sp: Dict[object, Dict[int, tuple]] = {}
        for channel_id, (sp, _, packets,
                         manifests) in gathered.items():
            per_sp.setdefault(sp, {})[channel_id] = (packets,
                                                     manifests)
        rounds_by_channel = {}
        for sp, batches in per_sp.items():
            for up in sp.process_round(self.round_index, batches):
                rounds_by_channel[up.channel_id] = up
        upstream = []
        for channel_id in sorted(rounds_by_channel):
            up = rounds_by_channel[channel_id]
            sp, members, packets, _ = gathered[channel_id]
            self._emit_upstream(sp, members, packets, up)
            upstream.append((channel_id, up.xor_packet,
                             self._decode_entries(channel_id, up)))
        round_packets = self.manager.process_round(
            self.round_index, upstream, route=self._route_voice,
            pre_downstream=self._ring_pending_callees)
        if prof is not None:
            prof.end(cells=sum(len(g[2]) for g in gathered.values()))
        self._deliver_downstream(round_packets)

    def step(self) -> None:
        """One codec-frame round: upstream, control, downstream."""
        if self.prof is not None:
            self.prof.round_started(self.round_index)
        if self.zone_mode == "batch":
            self._step_batch()
        else:
            self._upstream()
            self._ring_pending_callees()
            self._downstream()
        if self.wire is not None:
            self.wire.flush_round(self.round_index)
        if self.obs is not None:
            self.obs.round_finished(self.round_index)
        if self.prof is not None:
            self.prof.round_finished(self.round_index)
        self.round_index += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    # -- rate orchestration (§3.4.2) ---------------------------------------------

    def run_rate_epoch(self, epoch: int) -> Dict[str, int]:
        """Close a rate epoch: the mix reports its aggregate utilization
        to the zone directory, which returns the rates every link group
        must apply simultaneously.  In deployment this happens at hour
        scale; tests call it directly."""
        self.mix.report_utilization()
        return self.bed.directories[self.zone_id].run_epoch(epoch)

    # -- the wire plane ----------------------------------------------------------

    def attach_wire(self, observer=None,
                    interval: float = DEFAULT_ROUND_INTERVAL_S
                    ) -> CellTransport:
        """Materialize the zone's wire plane: from the next round on,
        every cell is offered to tapped netsim links under the zone's
        execution engine (per-cell events, per-round batches, or
        run-length vector segments — the tap records byte-identical
        streams under all of them), or — on the ``asyncio`` plane —
        physically transmitted as framed loopback UDP datagrams and
        tapped on receive (DESIGN.md §14).  The concrete
        :class:`~repro.core.transport.CellTransport` resolves through
        :func:`repro.execution.create_wire_fabric`; this module
        imports neither implementation's socket machinery.  The
        adversary observes via ``fabric.observer``; further taps
        subscribe through ``fabric.add_tap``
        (:mod:`repro.netsim.taps`).  Sharded engines defer tap
        fan-out — call ``fabric.finalize()`` before reading
        observations."""
        self.wire = execution_registry.create_wire_fabric(
            self.execution, seed=self.seed, interval=interval,
            observer=observer, shards=self.shards,
            shard_processes=self.shard_processes,
            net_processes=self.net_processes)
        if self.prof is not None:
            self.wire.set_profiler(self.prof)
        return self.wire

    # -- introspection ------------------------------------------------------------

    def state_of(self, client_id: str) -> CallState:
        return self.clients[client_id].agent.state

    def received_by(self, client_id: str) -> List[bytes]:
        return self.clients[client_id].agent.received_cells

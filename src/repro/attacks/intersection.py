"""The start/end-time intersection attack (§4.1.4).

"In the absence of chaffing, a passive attacker can correlate call
start and end times to identify which partners are communicating via an
intersection attack.  That is, the attacker sees that sets of users
start and end calls simultaneously, and attempts to identify pairs of
communicating clients from this set.  To confirm whether a single pair
of users, (u, v), is communicating, the attacker takes the intersection
of the sets of users with the same call start/end times as (u, v).
When the intersection set is size 2, the attacker has confirmed these
communication partners."

Against the paper's trace this traces **98.3%** of calls at 1-second
granularity.  :func:`intersection_attack` reproduces the attack against
any :class:`~repro.workload.cdr.CallTrace`; the Tor baseline exposes
exactly these start/end observables, while Herd exposes none (clients
are chaffed 24/7), which the harness demonstrates by feeding the attack
the *observable* event stream of each system model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from repro.workload.cdr import CallTrace


@dataclass
class IntersectionAttackResult:
    """Outcome of the intersection attack on one trace."""

    total_calls: int
    traced_calls: int
    #: Histogram of anonymity-set sizes (per call): size → count.
    anonymity_sizes: Dict[int, int]

    @property
    def traced_fraction(self) -> float:
        if self.total_calls == 0:
            return 0.0
        return self.traced_calls / self.total_calls

    def anonymity_set_percentile(self, q: float) -> float:
        """Percentile of the per-call anonymity-set size distribution."""
        values: List[int] = []
        for size, count in sorted(self.anonymity_sizes.items()):
            values.extend([size] * count)
        if not values:
            return 0.0
        return float(np.percentile(values, q))


def intersection_attack(trace: CallTrace,
                        bin_width: float = 1.0
                        ) -> IntersectionAttackResult:
    """Run the intersection attack at the given time granularity.

    The adversary's observables per user are (start bin, end bin) of
    each of the user's flows.  For each call, the candidate set is
    {users with a flow starting in the same bin} ∩ {users with a flow
    ending in the same bin}.  The call is *traced* when the candidate
    set contains exactly the two communicating parties.
    """
    start_bins, end_bins = trace.binned_events(bin_width)
    users_starting: Dict[int, Set[int]] = defaultdict(set)
    users_ending: Dict[int, Set[int]] = defaultdict(set)
    for record, s_bin, e_bin in zip(trace.records, start_bins, end_bins):
        users_starting[int(s_bin)].update((record.caller, record.callee))
        users_ending[int(e_bin)].update((record.caller, record.callee))

    traced = 0
    sizes: Dict[int, int] = defaultdict(int)
    for record, s_bin, e_bin in zip(trace.records, start_bins, end_bins):
        candidates = users_starting[int(s_bin)] & users_ending[int(e_bin)]
        size = len(candidates)
        sizes[size] += 1
        if size == 2:
            traced += 1
    return IntersectionAttackResult(
        total_calls=len(trace),
        traced_calls=traced,
        anonymity_sizes=dict(sizes),
    )


def herd_observable_trace(trace: CallTrace) -> CallTrace:
    """What the same adversary observes when the calls run over Herd:
    nothing.  Clients are connected and chaffed continuously, so there
    are no per-user flow start/end events at all; the returned trace is
    empty.  (Provided for symmetry in the benchmark harness.)"""
    return CallTrace([])

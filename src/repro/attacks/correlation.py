"""Flow-correlation attacks on packet time series.

The introduction notes that "a more sophisticated attack that also
considers the time series of encrypted packets would likely trace even
more calls" than the start/end intersection attack.  This module
implements that attack: the adversary bins each observed link's byte
counts and matches ingress flows to egress flows by Pearson
correlation.

Against unchaffed flows (Tor model) the on/off pattern of a call makes
ingress/egress series nearly identical and matching trivial.  Against
Herd, every link runs at a constant rate (invariant I6), so all series
are flat and correlation carries no signal — which the tests and the
benchmark harness verify.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 when either side is
    constant (no signal — the chaffed-link case)."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n == 0:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _window(all_series) -> List[int]:
    """The adversary's observation window: every bin from the first to
    the last sighting across *all* tapped flows.  Zero-traffic bins
    inside the window are evidence (silence), so they must be kept —
    dropping them would make an on/off flow look constant."""
    bins = set()
    for series in all_series:
        bins.update(series)
    if not bins:
        return []
    return list(range(min(bins), max(bins) + 1))


def correlate_flows(ingress: Mapping[str, Mapping[int, int]],
                    egress: Mapping[str, Mapping[int, int]],
                    threshold: float = 0.7
                    ) -> Dict[str, Optional[str]]:
    """Match each ingress flow to its best-correlated egress flow.

    ``ingress``/``egress`` map flow names to binned byte series (e.g.
    from :meth:`~repro.netsim.observer.LinkObserver.time_series`).
    Series are compared over the shared observation window (silent bins
    count as zeros).  Returns ingress → matched egress name, or None
    when no candidate clears ``threshold`` (the chaffed case).
    """
    window = _window(list(ingress.values()) + list(egress.values()))
    matches: Dict[str, Optional[str]] = {}
    for in_name, in_series in ingress.items():
        xs = [float(in_series.get(b, 0)) for b in window]
        best_name, best_r = None, threshold
        for out_name, out_series in egress.items():
            ys = [float(out_series.get(b, 0)) for b in window]
            r = pearson(xs, ys)
            if r > best_r:
                best_name, best_r = out_name, r
        matches[in_name] = best_name
    return matches


def matching_accuracy(matches: Mapping[str, Optional[str]],
                      truth: Mapping[str, str]) -> float:
    """Fraction of ingress flows correctly matched to their true
    egress counterpart."""
    if not truth:
        raise ValueError("ground truth is empty")
    correct = sum(1 for name, expected in truth.items()
                  if matches.get(name) == expected)
    return correct / len(truth)

"""Long-term intersection (statistical disclosure) attacks (§3.7).

"Herd makes such attacks unproductive, because it makes it impossible
to observe when a user makes a call.  Since users are online virtually
all the time, an adversary cannot even observe significant periods
during which a client could not make a call."

The attack: every time the adversary knows the *target* communicated
(e.g. a recipient got a message), he records the set of users who were
observably able to have sent it.  Intersecting these candidate sets
across many rounds shrinks toward the target.

:func:`long_term_intersection` implements the attack generically; the
harness feeds it candidate sets from (a) an unchaffed system, where the
candidates are exactly the users observed transmitting — the
intersection collapses rapidly — and (b) Herd, where every online user
is always a candidate, so the intersection never shrinks below the
anonymity set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set


@dataclass
class LongTermAttackResult:
    """Evolution of the adversary's candidate set across rounds."""

    set_sizes: List[int] = field(default_factory=list)
    final_candidates: Set[int] = field(default_factory=set)

    @property
    def rounds(self) -> int:
        return len(self.set_sizes)

    @property
    def identified(self) -> bool:
        """The attack fully succeeded: exactly one candidate remains."""
        return len(self.final_candidates) == 1

    @property
    def final_anonymity(self) -> int:
        return len(self.final_candidates)


def long_term_intersection(candidate_rounds: Iterable[Set[int]]
                           ) -> LongTermAttackResult:
    """Intersect the per-round candidate sets."""
    result = LongTermAttackResult()
    candidates: Set[int] = None
    for round_set in candidate_rounds:
        if candidates is None:
            candidates = set(round_set)
        else:
            candidates &= round_set
        result.set_sizes.append(len(candidates))
    result.final_candidates = candidates or set()
    return result


def unchaffed_candidate_rounds(trace, target: int,
                               bin_width: float = 1.0
                               ) -> List[Set[int]]:
    """Candidate sets against an *unchaffed* system: whenever the target
    participates in a call, the candidates are all users with a flow
    starting in the same bin (observable transmissions)."""
    from collections import defaultdict
    start_bins, _ = trace.binned_events(bin_width)
    users_starting = defaultdict(set)
    target_bins = []
    for record, s_bin in zip(trace.records, start_bins):
        users_starting[int(s_bin)].update((record.caller, record.callee))
        if target in (record.caller, record.callee):
            target_bins.append(int(s_bin))
    return [users_starting[b] for b in target_bins]


def herd_candidate_rounds(online_users: Set[int],
                          n_rounds: int) -> List[Set[int]]:
    """Candidate sets against Herd: every online user, every round —
    call activity is unobservable and clients are always online."""
    return [set(online_users) for _ in range(n_rounds)]

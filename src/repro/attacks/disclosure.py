"""Statistical disclosure attacks (SDA).

The classic refinement of the long-term intersection attack: instead of
intersecting candidate sets (which one noisy round can ruin), the
adversary *counts* how often each user is an eligible sender across the
target recipient's receiving rounds, and ranks users by excess
frequency over the background rate.  Herd's defence is the same as for
plain intersection — activity is unobservable, so every round's
eligible-sender set is the whole online population and all scores are
uniform — but SDA is the stronger attack a careful adversary would run,
and the harness demonstrates Herd defeats it too.

References: Danezis's statistical disclosure attack; the paper's §3.7
"long-term intersection attacks" discussion subsumes this family.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass
class DisclosureResult:
    """Ranked suspicion scores for one target."""

    scores: Dict[int, float]
    background: Dict[int, float]
    rounds: int

    def ranked(self) -> List[Tuple[int, float]]:
        """Users by descending excess score."""
        return sorted(self.scores.items(), key=lambda kv: -kv[1])

    def top(self, n: int = 1) -> List[int]:
        return [user for user, _ in self.ranked()[:n]]

    def separation(self) -> float:
        """Gap between the best score and the runner-up — the
        adversary's confidence.  Zero means no signal."""
        ranked = self.ranked()
        if len(ranked) < 2:
            return 0.0
        return ranked[0][1] - ranked[1][1]


def statistical_disclosure(target_rounds: Sequence[Set[int]],
                           background_rounds: Sequence[Set[int]]
                           ) -> DisclosureResult:
    """Run the SDA.

    ``target_rounds``: eligible-sender sets observed when the target
    received a message/call.  ``background_rounds``: eligible-sender
    sets at reference times unrelated to the target.  The score of a
    user is their frequency in target rounds minus their background
    frequency.
    """
    if not target_rounds:
        raise ValueError("need at least one target round")
    target_counts: Counter = Counter()
    for round_set in target_rounds:
        target_counts.update(round_set)
    background_counts: Counter = Counter()
    for round_set in background_rounds:
        background_counts.update(round_set)

    n_target = len(target_rounds)
    n_background = max(1, len(background_rounds))
    background = {user: background_counts[user] / n_background
                  for user in set(target_counts) | set(background_counts)}
    scores = {user: target_counts[user] / n_target
              - background.get(user, 0.0)
              for user in target_counts}
    return DisclosureResult(scores=scores, background=background,
                            rounds=n_target)


def sda_rounds_from_trace(trace, target: int, bin_width: float = 1.0
                          ) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Build SDA inputs from an *unchaffed* system's observables.

    Target rounds: users with a flow starting in the same bin as each
    call the target received.  Background rounds: the same sets for
    bins where the target received nothing.
    """
    from collections import defaultdict
    start_bins, _ = trace.binned_events(bin_width)
    users_starting = defaultdict(set)
    target_bins: List[int] = []
    for record, s_bin in zip(trace.records, start_bins):
        users_starting[int(s_bin)].update((record.caller, record.callee))
        if record.callee == target:
            target_bins.append(int(s_bin))
    target_rounds = [users_starting[b] - {target} for b in target_bins]
    background_rounds = [users - {target}
                         for b, users in users_starting.items()
                         if b not in set(target_bins)]
    return target_rounds, background_rounds


def herd_sda_rounds(online_users: Set[int], target: int,
                    n_target: int, n_background: int
                    ) -> Tuple[List[Set[int]], List[Set[int]]]:
    """The same adversary against Herd: every online user is eligible
    in every round (chaffed links hide sending), so target and
    background rounds are identical and all scores vanish."""
    everyone = set(online_users) - {target}
    return ([set(everyone) for _ in range(n_target)],
            [set(everyone) for _ in range(n_background)])

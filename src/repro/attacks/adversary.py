"""Global and local adversaries over a simulated deployment (§3).

"We assume an adversary who seeks to infer the IP addresses of the
caller and callee of calls made via Herd [...] The adversary is able to
observe the time series of encrypted traffic on all Herd links as part
of a global, passive traffic analysis attack.  Within a portion of the
Internet controlled by the adversary, he can additionally compromise
mixes and network components [...] and modify the time series of
encrypted traffic as part of a local, active traffic analysis attack."

:class:`GlobalPassiveAdversary` taps every link of a deployment with a
single :class:`~repro.netsim.observer.LinkObserver` and offers the
attack entry points; :class:`ActiveAdversary` additionally perturbs
links it controls (drop/delay), for the I7 experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.attacks.correlation import correlate_flows
from repro.netsim.link import Link
from repro.netsim.observer import LinkObserver


class GlobalPassiveAdversary:
    """Taps all given links; sees only wire-visible metadata."""

    def __init__(self, links: Optional[Iterable[Link]] = None):
        self.observer = LinkObserver("global-passive")
        self._links: List[Link] = []
        for link in links or []:
            self.tap(link)

    def tap(self, link: Link) -> None:
        link.add_observer(self.observer)
        self._links.append(link)

    def link_series(self, bin_width: float
                    ) -> Dict[str, Dict[int, int]]:
        """Binned byte series for every directed link, keyed
        "src->dst"."""
        out = {}
        for src, dst in self.observer.directed_pairs():
            out[f"{src}->{dst}"] = self.observer.time_series(
                src, dst, bin_width)
        return out

    def run_correlation_attack(self, ingress_prefix: str,
                               egress_prefix: str, bin_width: float,
                               threshold: float = 0.7
                               ) -> Dict[str, Optional[str]]:
        """Correlate flows entering the network (links whose name
        starts with ``ingress_prefix``) against flows leaving it."""
        series = self.link_series(bin_width)
        ingress = {k: v for k, v in series.items()
                   if k.startswith(ingress_prefix)}
        egress = {k: v for k, v in series.items()
                  if k.startswith(egress_prefix)}
        return correlate_flows(ingress, egress, threshold)


class ActiveAdversary(GlobalPassiveAdversary):
    """A local, active adversary: can also degrade links it controls."""

    def __init__(self, links: Optional[Iterable[Link]] = None):
        super().__init__(links)
        self.controlled: List[Link] = []

    def compromise(self, link: Link) -> None:
        self.controlled.append(link)

    def inject_loss(self, loss_rate: float) -> None:
        """Drop packets on every controlled link."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        for link in self.controlled:
            link.loss_rate = loss_rate

    def inject_delay(self, extra_owd: float) -> None:
        """Delay packets on every controlled link."""
        if extra_owd < 0:
            raise ValueError("delay cannot be negative")
        for link in self.controlled:
            link.one_way_delay += extra_owd

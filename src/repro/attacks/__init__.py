"""Traffic-analysis attacks from the paper's threat model (§3, §4.1.4).

* :mod:`repro.attacks.intersection` — the start/end-time intersection
  attack that traces 98.3% of calls against Tor-like (unchaffed)
  systems (§4.1.4).
* :mod:`repro.attacks.correlation` — flow correlation on the binned
  time series of encrypted packets (the "more sophisticated attack"
  the introduction mentions).
* :mod:`repro.attacks.longterm` — long-term intersection / statistical
  disclosure over many observation rounds (§3.7, §4.1.5).
* :mod:`repro.attacks.adversary` — helpers to mount a global passive
  observer over a simulated deployment.
"""

from repro.attacks.intersection import (
    IntersectionAttackResult,
    intersection_attack,
)
from repro.attacks.correlation import correlate_flows, pearson
from repro.attacks.longterm import (
    LongTermAttackResult,
    long_term_intersection,
)
from repro.attacks.disclosure import (
    DisclosureResult,
    statistical_disclosure,
)
from repro.attacks.adversary import (
    ActiveAdversary,
    GlobalPassiveAdversary,
)

__all__ = [
    "IntersectionAttackResult",
    "intersection_attack",
    "correlate_flows",
    "pearson",
    "LongTermAttackResult",
    "long_term_intersection",
    "DisclosureResult",
    "statistical_disclosure",
    "ActiveAdversary",
    "GlobalPassiveAdversary",
]

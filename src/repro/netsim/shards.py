"""Zone sharding for the vectorized wire plane: fan out, merge back.

The ``batch-v2`` plane's round work is a stream of *segments* — one
per (directed link, round), carrying the aggregate run-length wire
image.  Segments for different links are independent (Herd's fabric
links are ideal: zero delay, no loss, no shared rng), so they can be
processed by worker processes in parallel.  What must NOT depend on
the workers is the *result*: adversary observations, metrics, and
traces have to come out byte-identical to the single-process engines
(the observational-equivalence contract, DESIGN.md §9/§13).

The design that guarantees this:

* every segment is stamped at emission time with a **global slot
  key** ``(round_index, slot)`` — the position the segment's cells
  occupy in the canonical single-engine emission order;
* links are partitioned across shards by a deterministic stable hash
  (:meth:`ShardPlan.shard_of`), so the same link always lands on the
  same shard regardless of process scheduling;
* workers are pure functions of their input chunks
  (:func:`process_chunk`): they expand aggregate accounting
  (cells/bytes per segment and per link) and never touch shared
  state;
* the merge step (:func:`merge_results`) **sorts segments by slot
  key** before replaying them into the taps, so any interleaving of
  shard results — process pool scheduling, out-of-order completion,
  even a shuffled result list — produces the same tap state and the
  same determinism key (pinned by a hypothesis property in
  ``tests/test_shards.py``).

Everything that crosses the process boundary is a frozen dataclass of
picklable fields, declared :func:`~repro.core.sharding.shard_crossing`
so herdlint HL104 statically rejects unpicklable additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.core.sharding import shard_crossing


@shard_crossing
@dataclass(frozen=True)
class ShardSegment:
    """One (directed link, round) aggregate wire image, stamped with
    its canonical position in the global emission order.

    ``sizes`` / ``counts`` are parallel run-length arrays: the segment
    carries ``counts[i]`` wire-identical cells of ``sizes[i]`` bytes
    per run, runs in emission order.  ``time`` is the round tick in
    virtual seconds (the fabric's links are zero-delay, so every cell
    of the round is observed at the tick)."""

    round_index: int
    slot: int
    time: float
    src: str
    dst: str
    sizes: Tuple[int, ...]
    counts: Tuple[int, ...]


@shard_crossing
@dataclass(frozen=True)
class ShardChunk:
    """The fan-out unit: a run of segments routed to one shard."""

    shard_id: int
    segments: Tuple[ShardSegment, ...]


@shard_crossing
@dataclass(frozen=True)
class SegmentResult:
    """One processed segment: the original aggregate image plus the
    worker-computed totals (the per-(SP, round) arithmetic)."""

    segment: ShardSegment
    cells: int
    bytes: int


@shard_crossing
@dataclass(frozen=True)
class ShardResult:
    """Everything one chunk produced: per-segment results plus the
    shard's per-link stat deltas ``{(src, dst): (cells, bytes)}``."""

    shard_id: int
    segments: Tuple[SegmentResult, ...]
    link_stats: Tuple[Tuple[Tuple[str, str], Tuple[int, int]], ...]
    cells: int
    bytes: int


def process_chunk(chunk: ShardChunk) -> ShardResult:
    """The shard worker: a pure function from chunk to result.

    Computes each segment's aggregate totals (one multiply-add per
    run — the vectorized accounting) and the per-link stat deltas.
    Runs identically inline or in a worker process; everything it
    returns is deterministic in the chunk alone."""
    seg_results: List[SegmentResult] = []
    link_stats: Dict[Tuple[str, str], List[int]] = {}
    total_cells = 0
    total_bytes = 0
    for segment in chunk.segments:
        cells = 0
        n_bytes = 0
        for size, count in zip(segment.sizes, segment.counts):
            cells += count
            n_bytes += size * count
        seg_results.append(SegmentResult(segment=segment, cells=cells,
                                         bytes=n_bytes))
        stats = link_stats.setdefault((segment.src, segment.dst),
                                      [0, 0])
        stats[0] += cells
        stats[1] += n_bytes
        total_cells += cells
        total_bytes += n_bytes
    return ShardResult(
        shard_id=chunk.shard_id,
        segments=tuple(seg_results),
        link_stats=tuple(sorted(
            (key, (stats[0], stats[1]))
            for key, stats in link_stats.items())),
        cells=total_cells,
        bytes=total_bytes,
    )


class ShardPlan:
    """Deterministic link → shard partition.

    A stable content hash of the directed link name (crc32, identical
    across processes and platforms — unlike ``hash()``, which is
    salted) keeps the assignment a pure function of the topology, so
    fan-out is reproducible run to run and machine to machine."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards

    def shard_of(self, src: str, dst: str) -> int:
        if self.n_shards == 1:
            return 0
        return crc32(f"{src}|{dst}".encode()) % self.n_shards


class ShardRunner:
    """Executes chunks, inline or on a worker-process pool.

    ``processes=None`` (the default) picks processes when
    ``n_shards > 1`` and the platform can fork/spawn, inline
    otherwise; pass ``processes=False`` to force inline execution
    (same code path, no pool — what most tests use) or
    ``processes=True`` to require a real pool.  Results are returned
    in completion order; only :func:`merge_results` (which sorts)
    may interpret them."""

    def __init__(self, n_shards: int,
                 processes: Optional[bool] = None):
        self.plan = ShardPlan(n_shards)
        self.n_shards = n_shards
        if processes is None:
            processes = n_shards > 1
        self._want_processes = bool(processes)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(self.n_shards)
        return self._pool

    def run(self, chunks: Sequence[ShardChunk]) -> List[ShardResult]:
        """Process chunks; completion-ordered results."""
        if not chunks:
            return []
        if not self._want_processes or len(chunks) == 1:
            return [process_chunk(chunk) for chunk in chunks]
        pool = self._ensure_pool()
        return list(pool.imap_unordered(process_chunk, chunks))

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def merge_results(results: Iterable[ShardResult], *,
                  taps: Sequence = ()) -> Dict[str, object]:
    """The deterministic merge step.

    Orders every segment by its global slot key ``(round_index,
    slot)`` — which is a total order by construction, independent of
    shard assignment and arrival interleaving — then replays the
    ordered stream into ``taps`` (via :func:`repro.netsim.taps
    .offer_runs`, so each tap consumes at its richest capability).
    Returns the merged aggregate accounting::

        {"cells": int, "bytes": int, "segments": int,
         "link_stats": {(src, dst): (cells, bytes)}}

    Any permutation of ``results`` yields byte-identical tap state
    and accounting (the shard-merge determinism contract; pinned by
    hypothesis in ``tests/test_shards.py``).
    """
    from repro.netsim.taps import offer_runs

    ordered: List[SegmentResult] = []
    link_stats: Dict[Tuple[str, str], List[int]] = {}
    total_cells = 0
    total_bytes = 0
    for result in results:
        ordered.extend(result.segments)
        for key, (cells, n_bytes) in result.link_stats:
            stats = link_stats.setdefault(tuple(key), [0, 0])
            stats[0] += cells
            stats[1] += n_bytes
        total_cells += result.cells
        total_bytes += result.bytes
    ordered.sort(key=lambda r: (r.segment.round_index,
                                r.segment.slot))
    for seg_result in ordered:
        segment = seg_result.segment
        for tap in taps:
            offer_runs(tap, segment.time, segment.src, segment.dst,
                       segment.sizes, segment.counts)
    return {
        "cells": total_cells,
        "bytes": total_bytes,
        "segments": len(ordered),
        "link_stats": {key: (stats[0], stats[1])
                       for key, stats in sorted(link_stats.items())},
    }

"""Discrete-event network simulation substrate.

The paper evaluates Herd on a live Amazon EC2 deployment plus
trace-driven simulations.  Lacking a testbed, this package provides the
closest synthetic equivalent: a deterministic discrete-event simulator
with

* an event :class:`~repro.netsim.engine.EventLoop` (priority queue,
  virtual clock),
* :class:`~repro.netsim.node.Node` endpoints with packet handlers,
* :class:`~repro.netsim.link.Link` objects modelling propagation delay,
  bandwidth, jitter, and random loss,
* a geographic :mod:`~repro.netsim.topology` with an EC2-derived
  inter-region RTT matrix (AU/EU/NA/SA as in the paper's Fig. 7), and
* a link-level :class:`~repro.netsim.observer.LinkObserver` that records
  the *time series of encrypted packets* — exactly the adversary
  capability assumed by Herd's threat model (§3, "able to observe the
  time series of encrypted traffic on all Herd links").
"""

from repro.netsim.engine import EventLoop
from repro.netsim.packet import Packet
from repro.netsim.node import Node
from repro.netsim.link import Link
from repro.netsim.rounds import CellBatch, RoundScheduler
from repro.netsim.topology import (
    Site,
    GeoTopology,
    EC2_REGIONS,
    default_topology,
)
from repro.netsim.observer import LinkObserver

# Event, LinkStats, Region, and Observation are implementation detail
# of their modules — import them from there if you really need them.
__all__ = [
    "EventLoop",
    "Packet",
    "Node",
    "Link",
    "CellBatch",
    "RoundScheduler",
    "Site",
    "GeoTopology",
    "EC2_REGIONS",
    "default_topology",
    "LinkObserver",
]

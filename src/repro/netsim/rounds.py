"""Round-synchronous batch execution: cell vectors instead of events.

Herd's data plane is intrinsically round-based (§3.4, §3.6): clients,
SPs, and mixes emit cells at a constant rate every codec-frame round,
so a per-cell discrete-event schedule — one heap event plus one
:class:`~repro.netsim.packet.Packet` per cell — burns O(cells) Python
objects for a schedule that is a pure function of the clock.  This
module provides the batched alternative:

* :class:`CellBatch` — a struct-of-arrays carrier for one round's cells
  on one directed link: parallel ``sizes`` / ``kinds`` / ``circuit_ids``
  / ``payloads`` lists, no per-cell objects.  Payload entries are
  *references* to the ciphertext bytes, never copies.
* :class:`RoundScheduler` — a round clock over the
  :class:`~repro.netsim.engine.EventLoop`: one heap event per round,
  firing registered handlers in order, instead of one event per cell.

Links accept a whole batch via :meth:`~repro.netsim.link.Link
.transmit_batch`; observers that implement ``record_batch`` see the
vector directly, and the adversary :class:`~repro.netsim.observer
.LinkObserver` records exactly the same (time, size, src, dst) stream
it would have recorded per packet — constant-rate emission means the
wire image is a function of the clock, not of the execution engine
(the observational-equivalence contract, DESIGN.md §9).

The per-packet API remains the compatible path: :class:`CellBatch
.packets` and :meth:`CellBatch.from_packets` adapt in both directions.

:class:`CellVector` is the second-generation carrier (the ``batch-v2``
execution plane, DESIGN.md §13): run-length struct-of-arrays with
*aggregate chaff accounting* — a run of n wire-identical chaff cells
costs one row of the parallel arrays, not n entries, so the per-(SP,
round) cost is O(distinct runs) instead of O(cells).  Sizes and counts
live in numeric arrays (:mod:`numpy` when available, :class:`array
.array` otherwise) and the aggregate totals are maintained with one
arithmetic op per appended run.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.netsim.packet import IP_UDP_HEADER_BYTES, Packet

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # the container path: pure-stdlib fallback
    _np = None


class CellView:
    """A lightweight read-only view of one cell inside a
    :class:`CellBatch` — duck-compatible with the fields per-packet
    observers read (``size``, ``kind``, ``circuit_id``, ``payload``)
    without materializing a :class:`~repro.netsim.packet.Packet`."""

    __slots__ = ("payload", "size", "kind", "circuit_id", "src", "dst")

    def __init__(self, payload: bytes, size: int, kind: str,
                 circuit_id: Optional[int], src: str, dst: str):
        self.payload = payload
        self.size = size
        self.kind = kind
        self.circuit_id = circuit_id
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:
        return (f"CellView({self.src}->{self.dst} {self.kind} "
                f"{self.size}B)")


class CellBatch:
    """One round's cells on one directed link, struct-of-arrays.

    Parameters
    ----------
    src, dst:
        The directed link the batch rides (endpoint names).
    round_index:
        The data-plane round the batch belongs to (-1 if unknown).

    The parallel lists ``sizes`` (on-the-wire bytes, payload plus
    IP/UDP headers), ``kinds`` (instrumentation labels, invisible to
    the adversary model), ``circuit_ids``, and ``payloads`` (references
    to the ciphertext) hold one entry per cell, in emission order —
    the order a per-packet engine would have transmitted them.
    """

    __slots__ = ("src", "dst", "round_index", "sizes", "kinds",
                 "circuit_ids", "payloads")

    def __init__(self, src: str, dst: str, round_index: int = -1):
        self.src = src
        self.dst = dst
        self.round_index = round_index
        self.sizes: List[int] = []
        self.kinds: List[str] = []
        self.circuit_ids: List[Optional[int]] = []
        self.payloads: List[bytes] = []

    def append(self, payload: bytes, kind: str = "data",
               circuit_id: Optional[int] = None) -> None:
        """Add one cell (payload by reference)."""
        self.sizes.append(len(payload) + IP_UDP_HEADER_BYTES)
        self.kinds.append(kind)
        self.circuit_ids.append(circuit_id)
        self.payloads.append(payload)

    def append_repeated(self, payload: bytes, n: int,
                        kind: str = "chaff",
                        circuit_id: Optional[int] = None) -> None:
        """Add ``n`` identical cells sharing one payload reference —
        the chaff-fill case: n wire-identical cells, one buffer."""
        if n < 0:
            raise ValueError("cannot append a negative cell count")
        size = len(payload) + IP_UDP_HEADER_BYTES
        self.sizes.extend([size] * n)
        self.kinds.extend([kind] * n)
        self.circuit_ids.extend([circuit_id] * n)
        self.payloads.extend([payload] * n)

    def __len__(self) -> int:
        return len(self.sizes)

    def total_bytes(self) -> int:
        """On-the-wire bytes of the whole batch."""
        return sum(self.sizes)

    def cells(self) -> Iterator[CellView]:
        """Iterate the batch as lightweight per-cell views (the
        fallback for observers without ``record_batch``)."""
        for payload, size, kind, circuit_id in zip(
                self.payloads, self.sizes, self.kinds,
                self.circuit_ids):
            yield CellView(payload, size, kind, circuit_id,
                           self.src, self.dst)

    # -- per-packet adapters ---------------------------------------------------

    def packets(self, loop=None) -> List[Packet]:
        """Materialize the batch as per-packet objects (the thin
        adapter for legacy per-packet receivers).  Packet ids are
        stamped from ``loop`` when given, so ids stay loop-local and
        deterministic."""
        out = []
        for payload, kind, circuit_id in zip(self.payloads, self.kinds,
                                             self.circuit_ids):
            packet = Packet(payload, self.src, self.dst, kind=kind,
                            circuit_id=circuit_id)
            if loop is not None:
                packet.packet_id = loop.next_packet_id()
            out.append(packet)
        return out

    @classmethod
    def from_packets(cls, packets: Sequence[Packet], src: str,
                     dst: str, round_index: int = -1) -> "CellBatch":
        """Wrap per-packet objects into a batch (payloads by ref)."""
        batch = cls(src, dst, round_index)
        for packet in packets:
            batch.append(packet.payload, kind=packet.kind,
                         circuit_id=packet.circuit_id)
        return batch

    def __repr__(self) -> str:
        return (f"CellBatch({self.src}->{self.dst} r{self.round_index} "
                f"{len(self)} cells, {self.total_bytes()}B)")


class CellVector:
    """One round's cells on one directed link, run-length encoded.

    The ``batch-v2`` carrier: where :class:`CellBatch` stores one list
    entry per cell, a CellVector stores one *run* per maximal group of
    wire-identical cells — ``(payload, kind, circuit_id, size, count)``
    — with sizes and counts in parallel numeric arrays (struct of
    arrays; numpy when installed, :class:`array.array` of int64
    otherwise).  Herd's constant-rate chaffed channels make this the
    natural wire representation: the fill of an SP↔mix trunk is n
    wire-identical cells per round, which is exactly one run, so the
    per-(SP, round) accounting is one arithmetic op regardless of how
    many clients the trunk serves (aggregate chaff accounting).

    Aggregate totals (:attr:`cell_count`, :attr:`byte_count`) are
    maintained incrementally; :meth:`cells` and :meth:`to_batch`
    expand to per-cell form for consumers that need it, preserving
    emission order exactly (the observational-equivalence contract).
    """

    __slots__ = ("src", "dst", "round_index", "payloads", "kinds",
                 "circuit_ids", "_sizes", "_counts", "cell_count",
                 "byte_count")

    def __init__(self, src: str, dst: str, round_index: int = -1):
        self.src = src
        self.dst = dst
        self.round_index = round_index
        #: One entry per run (references, never copies).
        self.payloads: List[bytes] = []
        self.kinds: List[str] = []
        self.circuit_ids: List[Optional[int]] = []
        self._sizes = array("q")
        self._counts = array("q")
        #: Aggregate totals, maintained with one add/multiply per run.
        self.cell_count = 0
        self.byte_count = 0

    # -- construction ----------------------------------------------------------

    def append_run(self, payload: bytes, count: int = 1,
                   kind: str = "data",
                   circuit_id: Optional[int] = None) -> None:
        """Add a run of ``count`` wire-identical cells sharing one
        payload reference.  O(1) regardless of ``count``."""
        if count < 0:
            raise ValueError("cannot append a negative cell count")
        if count == 0:
            return
        size = len(payload) + IP_UDP_HEADER_BYTES
        self.payloads.append(payload)
        self.kinds.append(kind)
        self.circuit_ids.append(circuit_id)
        self._sizes.append(size)
        self._counts.append(count)
        self.cell_count += count
        self.byte_count += size * count

    def append(self, payload: bytes, kind: str = "data",
               circuit_id: Optional[int] = None) -> None:
        """Add one cell (a run of one) — CellBatch-compatible."""
        self.append_run(payload, 1, kind=kind, circuit_id=circuit_id)

    def append_repeated(self, payload: bytes, n: int,
                        kind: str = "chaff",
                        circuit_id: Optional[int] = None) -> None:
        """CellBatch-compatible alias of :meth:`append_run`."""
        if n < 0:
            raise ValueError("cannot append a negative cell count")
        self.append_run(payload, n, kind=kind, circuit_id=circuit_id)

    # -- aggregate views -------------------------------------------------------

    def __len__(self) -> int:
        return self.cell_count

    @property
    def n_runs(self) -> int:
        return len(self._counts)

    def total_bytes(self) -> int:
        """On-the-wire bytes of the whole vector (O(1): the total is
        maintained at append time)."""
        return self.byte_count

    def size_runs(self) -> Tuple[Sequence[int], Sequence[int]]:
        """The (sizes, counts) parallel arrays — the wire image as an
        aggregate.  Always the int64 :class:`array.array` buffers,
        whose elements are exact Python ints: this is the tap
        boundary, and observation streams must stay byte-identical to
        the per-cell engines' (``numpy.int64`` leaking into an
        :class:`~repro.netsim.observer.Observation` would break the
        pinned digests).  Numeric bulk work uses
        :meth:`size_runs_np`."""
        return self._sizes, self._counts

    def size_runs_np(self):
        """Zero-copy numpy int64 views of (sizes, counts) for bulk
        arithmetic, or ``None`` when numpy is not installed (the
        container path) — callers fall back to :meth:`size_runs`."""
        if _np is None:
            return None
        return (_np.frombuffer(self._sizes, dtype=_np.int64),
                _np.frombuffer(self._counts, dtype=_np.int64))

    def runs(self) -> Iterator[Tuple[bytes, str, Optional[int], int,
                                     int]]:
        """Iterate (payload, kind, circuit_id, size, count) runs in
        emission order."""
        return zip(self.payloads, self.kinds, self.circuit_ids,
                   self._sizes, self._counts)

    # -- per-cell expansion ----------------------------------------------------

    def expanded_sizes(self) -> Sequence[int]:
        """Per-cell sizes in emission order (``numpy.repeat`` when
        available) — the expansion a per-cell observer records."""
        if _np is not None:
            sizes, counts = self.size_runs_np()
            return _np.repeat(sizes, counts)
        out = array("q")
        for size, count in zip(self._sizes, self._counts):
            if count == 1:
                out.append(size)
            else:
                out.extend(array("q", [size]) * count)
        return out

    def cells(self) -> Iterator[CellView]:
        """Per-cell views in emission order (the compatibility path
        for per-cell consumers)."""
        for payload, kind, circuit_id, size, count in self.runs():
            for _ in range(count):
                yield CellView(payload, size, kind, circuit_id,
                               self.src, self.dst)

    def to_batch(self) -> CellBatch:
        """Expand into a per-cell :class:`CellBatch` (emission order
        preserved)."""
        batch = CellBatch(self.src, self.dst, self.round_index)
        for payload, kind, circuit_id, _, count in self.runs():
            if count == 1:
                batch.append(payload, kind=kind, circuit_id=circuit_id)
            else:
                batch.append_repeated(payload, count, kind=kind,
                                      circuit_id=circuit_id)
        return batch

    @classmethod
    def from_batch(cls, batch: CellBatch) -> "CellVector":
        """Wrap a per-cell batch (each cell becomes a run of one; no
        re-compression is attempted — order is what matters)."""
        vector = cls(batch.src, batch.dst, batch.round_index)
        for payload, kind, circuit_id in zip(batch.payloads,
                                             batch.kinds,
                                             batch.circuit_ids):
            vector.append_run(payload, 1, kind=kind,
                              circuit_id=circuit_id)
        return vector

    def packets(self, loop=None) -> List[Packet]:
        """Materialize as per-packet objects (via the batch adapter)."""
        return self.to_batch().packets(loop)

    def __repr__(self) -> str:
        return (f"CellVector({self.src}->{self.dst} "
                f"r{self.round_index} {self.cell_count} cells in "
                f"{self.n_runs} runs, {self.byte_count}B)")


class RoundScheduler:
    """A round clock over the event loop: one event per round.

    Registered handlers fire in registration order inside a single
    loop event at ``start + round_index * interval``; everything a
    round emits (whole :class:`CellBatch` vectors through
    :meth:`~repro.netsim.link.Link.transmit_batch`) happens inside
    that one event, so the heap holds O(rounds) entries instead of
    O(cells).

    The scheduler supports two driving styles:

    * **push**: :meth:`run_rounds` schedules and executes ``n``
      consecutive rounds on the owned loop;
    * **external stepping**: :meth:`run_round` executes exactly one
      round (used by round-driven simulations that interleave their
      own synchronous work between rounds).
    """

    def __init__(self, loop, interval: float, start: float = 0.0):
        if interval <= 0:
            raise ValueError("round interval must be positive")
        if start < 0:
            raise ValueError("round start must be non-negative")
        self.loop = loop
        self.interval = interval
        self.start = start
        self.rounds_run = 0
        self._handlers = []
        #: Optional phase-profiler hook (duck-typed, like
        #: ``EventLoop.obs``); installed by :meth:`repro.obs.prof
        #: .profiler.PhaseProfiler.attach_scheduler`.
        self.prof = None

    def on_round(self, handler) -> None:
        """Register ``handler(round_index)`` to fire every round."""
        self._handlers.append(handler)

    def time_of(self, round_index: int) -> float:
        """Virtual time of a round's tick."""
        return self.start + round_index * self.interval

    def _fire(self, round_index: int) -> None:
        prof = self.prof
        if prof is not None:
            prof.begin("schedule")
        for handler in self._handlers:
            handler(round_index)
        self.rounds_run += 1
        if prof is not None:
            prof.end()

    def run_round(self, round_index: Optional[int] = None) -> int:
        """Execute one round (default: the next one) as a single loop
        event, running the loop up to the round's tick.  Returns the
        round index executed."""
        r = self.rounds_run if round_index is None else round_index
        t = self.time_of(r)
        self.loop.schedule_at(t, lambda: self._fire(r))
        self.loop.run(until=t)
        return r

    def run_rounds(self, n: int) -> None:
        """Execute ``n`` consecutive rounds."""
        for _ in range(n):
            self.run_round()

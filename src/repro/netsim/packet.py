"""Simulated network packets.

A :class:`Packet` carries opaque ``payload`` bytes (often a sealed DTLS
datagram produced by :mod:`repro.crypto.dtls`) plus bookkeeping used by
the simulator and the adversary's observer.  The adversary sees only
``size`` and timing — the fields an eavesdropper on an encrypted link
can record; protocol code may read ``payload``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count()

#: IPv4 (20) + UDP (8) header bytes added to every datagram on the wire.
IP_UDP_HEADER_BYTES = 28


@dataclass
class Packet:
    """One datagram in flight.

    ``kind`` is a protocol-internal label ("voip", "chaff", "signal",
    "control"); it exists for instrumentation and is *never* visible to
    the adversary model (observers record only size and time).
    """

    payload: bytes
    src: str
    dst: str
    kind: str = "data"
    circuit_id: Optional[int] = None
    sent_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """On-the-wire size in bytes (payload plus IP/UDP headers)."""
        return len(self.payload) + IP_UDP_HEADER_BYTES

    def __repr__(self) -> str:  # compact repr for simulation logs
        return (f"Packet(#{self.packet_id} {self.src}->{self.dst} "
                f"{self.kind} {self.size}B)")

"""Simulated network packets.

A :class:`Packet` carries opaque ``payload`` bytes (often a sealed DTLS
datagram produced by :mod:`repro.crypto.dtls`) plus bookkeeping used by
the simulator and the adversary's observer.  The adversary sees only
``size`` and timing — the fields an eavesdropper on an encrypted link
can record; protocol code may read ``payload``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: IPv4 (20) + UDP (8) header bytes added to every datagram on the wire.
IP_UDP_HEADER_BYTES = 28


@dataclass
class Packet:
    """One datagram in flight.

    ``kind`` is a protocol-internal label ("voip", "chaff", "signal",
    "control"); it exists for instrumentation and is *never* visible to
    the adversary model (observers record only size and time).

    ``packet_id`` is stamped by the first :class:`~repro.netsim.link
    .Link` that transmits the packet, from the owning
    :meth:`~repro.netsim.engine.EventLoop.next_packet_id` counter.
    Ids are loop-local by design: a process-global counter would leak
    across simulations, making the second of two identically-seeded
    runs in one interpreter differ from the first.
    """

    payload: bytes
    src: str
    dst: str
    kind: str = "data"
    circuit_id: Optional[int] = None
    sent_at: float = 0.0
    packet_id: Optional[int] = None

    @property
    def size(self) -> int:
        """On-the-wire size in bytes (payload plus IP/UDP headers)."""
        return len(self.payload) + IP_UDP_HEADER_BYTES

    def __repr__(self) -> str:  # compact repr for simulation logs
        ident = "?" if self.packet_id is None else self.packet_id
        return (f"Packet(#{ident} {self.src}->{self.dst} "
                f"{self.kind} {self.size}B)")

"""Simulated network endpoints.

A :class:`Node` is anything with a name and a packet handler: a Herd
client, superpeer, mix, or directory.  Nodes are attached to
:class:`~repro.netsim.link.Link` objects; the link delivers packets by
invoking :meth:`Node.receive`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.netsim.packet import Packet


class Node:
    """A named endpoint attached to an event loop.

    Subclasses (or composition users) register a handler with
    :meth:`on_packet`; unhandled packets are counted and dropped, which
    surfaces wiring bugs in tests via ``unhandled_packets``.
    """

    def __init__(self, name: str, loop):
        self.name = name
        self.loop = loop
        self._handler: Optional[Callable[[Packet], None]] = None
        self._batch_handler: Optional[Callable[["object"], None]] = None
        self.links: Dict[str, "object"] = {}
        self.packets_received = 0
        self.bytes_received = 0
        self.unhandled_packets = 0

    def on_packet(self, handler: Callable[[Packet], None]) -> None:
        """Register the function invoked for each delivered packet."""
        self._handler = handler

    def on_batch(self, handler: Callable[["object"], None]) -> None:
        """Register the function invoked for each delivered
        :class:`~repro.netsim.rounds.CellBatch` (round-synchronous
        execution).  Without one, batches fall back to the per-packet
        handler via the materializing adapter."""
        self._batch_handler = handler

    def attach_link(self, peer_name: str, link) -> None:
        """Record a link to a peer for :meth:`send` lookups."""
        self.links[peer_name] = link

    def send(self, peer_name: str, packet: Packet) -> None:
        """Transmit ``packet`` over the attached link to ``peer_name``."""
        link = self.links.get(peer_name)
        if link is None:
            raise KeyError(f"{self.name} has no link to {peer_name}")
        link.transmit(self, packet)

    def receive(self, packet: Packet) -> None:
        """Called by links on delivery."""
        self.packets_received += 1
        self.bytes_received += packet.size
        if self._handler is not None:
            self._handler(packet)
        else:
            self.unhandled_packets += 1

    def receive_batch(self, batch) -> None:
        """Called by links on batch delivery: bulk counters, then the
        batch handler — or the per-packet handler over materialized
        packets (the O(cells) adapter) when no batch handler exists.
        A sink node (neither handler) just counts the whole vector."""
        n = len(batch)
        self.packets_received += n
        self.bytes_received += batch.total_bytes()
        if self._batch_handler is not None:
            self._batch_handler(batch)
        elif self._handler is not None:
            for packet in batch.packets(self.loop):
                self._handler(packet)
        else:
            self.unhandled_packets += n

    def __repr__(self) -> str:
        return f"Node({self.name})"

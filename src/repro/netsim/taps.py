"""The public wire-tap protocol: how observers consume the wire plane.

Herd's adversary model is a passive tap on every link.  Historically
the tap interface was an undocumented internal of ``LiveZone`` /
:class:`~repro.netsim.link.Link` — consumers (the attack suite, the
bench tally, the metrics LinkTap) each duck-typed against whatever the
engine of the day called.  This module makes the contract a documented
public protocol so external consumers (e.g. the ML-adversary suite,
ROADMAP item 2) can subscribe to batch observations without touching
private state.

A tap implements some prefix of three capability levels; every wire
plane (event, batch, batch-v2) dispatches to the *richest* method the
tap provides, so a tap trades fidelity for cost explicitly:

* ``record(time, cell, src, dst)`` — REQUIRED.  One call per cell;
  ``cell`` exposes at least ``size`` (wire-visible bytes).  The only
  level that sees cells individually.
* ``record_batch(time, batch, src, dst)`` — OPTIONAL.  One call per
  (link, round) with the whole per-cell vector (``batch.sizes`` in
  emission order).  O(1) calls, O(cells) data.
* ``record_runs(time, src, dst, sizes, counts)`` — OPTIONAL.  One
  call per (link, round) with the *aggregate* wire image: parallel
  run-length arrays (``counts[i]`` wire-identical cells of
  ``sizes[i]`` bytes, runs in emission order).  O(1) calls, O(runs)
  data — the level the vectorized ``batch-v2`` plane feeds, and the
  only per-link level that stays cheap at million-client scale.
* ``record_round_runs(time, keys, sizes, counts)`` — OPTIONAL.  One
  call per *round* with the whole round's run table: parallel arrays
  where row ``i`` is a run of ``counts[i]`` wire-identical cells of
  ``sizes[i]`` bytes on the directed link ``keys[i] = (src, dst)``.
  Rows are grouped per link in first-emission order (exactly the
  per-link order ``record_runs`` would have seen).  An aggregate tap
  can reduce the table at C speed (``sum(counts)``); this is what
  keeps the ``batch-v2`` hot loop O(runs) with a small constant.
* ``record_drop(time, cell, src, dst)`` — OPTIONAL extension for
  *non-adversary* instrumentation (a real wire tap cannot tell a
  dropped cell from a delivered one, so the adversary tap must not
  implement it).

Because constant-rate emission makes the wire image a pure function of
the clock (invariant I6), the levels describe the *same* stream at
different aggregation — :func:`offer_runs` / :func:`offer_batch` /
:func:`offer_round_runs` guarantee every tap sees byte-identical
information regardless of which engine produced it (DESIGN.md §9,
§13).

:class:`~repro.netsim.observer.LinkObserver` (re-exported here) is the
reference per-cell adversary tap; :class:`TallyTap` is the reference
aggregate tap.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.netsim.observer import LinkObserver, Observation
from repro.netsim.rounds import CellView

__all__ = ["LinkObserver", "Observation", "TallyTap", "KindlessCell",
           "offer_batch", "offer_runs", "offer_round_runs"]


class KindlessCell:
    """The minimal wire-visible cell handed to per-cell ``record``
    when only aggregate information exists: size and endpoints, no
    payload, kind, or circuit id (exactly what a real tap sees)."""

    __slots__ = ("size", "src", "dst")

    def __init__(self, size: int, src: str, dst: str):
        self.size = size
        self.src = src
        self.dst = dst


class TallyTap:
    """The reference aggregate tap: global cell/byte totals with O(1)
    work per (link, round) under every engine.  Subclass and extend
    for richer aggregates (per-link histograms, windowed rates)."""

    def __init__(self):
        self.cells = 0
        self.bytes = 0

    def record(self, time: float, cell, src: str, dst: str) -> None:
        self.cells += 1
        self.bytes += cell.size

    def record_batch(self, time: float, batch, src: str,
                     dst: str) -> None:
        self.cells += len(batch)
        self.bytes += batch.total_bytes()

    def record_runs(self, time: float, src: str, dst: str,
                    sizes: Sequence[int],
                    counts: Sequence[int]) -> None:
        total_cells = 0
        total_bytes = 0
        for size, count in zip(sizes, counts):
            total_cells += count
            total_bytes += size * count
        self.cells += total_cells
        self.bytes += total_bytes

    def record_round_runs(self, time: float,
                          keys: Sequence[Tuple[str, str]],
                          sizes: Sequence[int],
                          counts: Sequence[int]) -> None:
        self.cells += sum(counts)
        self.bytes += sum(s * c for s, c in zip(sizes, counts))


def offer_batch(tap, time: float, batch, src: str, dst: str) -> None:
    """Offer one (link, round) batch to a tap at its richest
    capability: ``record_batch`` when present, per-cell ``record``
    otherwise.  ``batch`` may be a :class:`~repro.netsim.rounds
    .CellBatch` or :class:`~repro.netsim.rounds.CellVector` (both
    provide ``cells()``)."""
    record_batch = getattr(tap, "record_batch", None)
    if record_batch is not None:
        record_batch(time, batch, src, dst)
        return
    for cell in batch.cells():
        tap.record(time, cell, src, dst)


def offer_runs(tap, time: float, src: str, dst: str,
               sizes: Sequence[int], counts: Sequence[int],
               kinds: Optional[Sequence[str]] = None) -> None:
    """Offer one (link, round) aggregate wire image to a tap at its
    richest capability.

    Preference order: ``record_runs`` (O(runs)); else per-cell
    ``record`` with :class:`KindlessCell` views, expanding runs in
    emission order — byte-identical to what a per-cell engine would
    have offered."""
    record_runs = getattr(tap, "record_runs", None)
    if record_runs is not None:
        record_runs(time, src, dst, sizes, counts)
        return
    record = tap.record
    for size, count in zip(sizes, counts):
        cell = KindlessCell(size, src, dst)
        for _ in range(count):
            record(time, cell, src, dst)


def offer_round_runs(tap, time: float,
                     keys: Sequence[Tuple[str, str]],
                     sizes: Sequence[int],
                     counts: Sequence[int]) -> None:
    """Offer one *round's* run table to a tap at its richest
    capability.

    Preference order: ``record_round_runs`` (one call, O(runs) data);
    else the table is regrouped per directed link — all of a link's
    runs contiguous, links in first-emission order, exactly the
    grouping the per-link engines produce — and offered through
    :func:`offer_runs` (which itself falls back to per-cell
    ``record``).  Rows in ``keys``/``sizes``/``counts`` must already
    be link-contiguous in that order."""
    record_round_runs = getattr(tap, "record_round_runs", None)
    if record_round_runs is not None:
        record_round_runs(time, keys, sizes, counts)
        return
    grouped: "dict" = {}
    for key, size, count in zip(keys, sizes, counts):
        entry = grouped.get(key)
        if entry is None:
            grouped[key] = ([size], [count])
        else:
            entry[0].append(size)
            entry[1].append(count)
    for (src, dst), (link_sizes, link_counts) in grouped.items():
        offer_runs(tap, time, src, dst, link_sizes, link_counts)


# Re-exported for the protocol docstring above; CellView is the
# per-cell view type batch engines hand to ``record``.
_ = CellView

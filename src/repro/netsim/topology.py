"""Geographic topology with an EC2-derived inter-region latency matrix.

The paper's prototype deployment spans 4 Amazon EC2 data centers in
Australia, Europe, North and South America (Fig. 7).  This module
models that geography:

* :class:`Region` — a continent-scale region hosting one or more sites.
* :class:`Site` — a data center (a Herd *zone* maps onto one site).
* :class:`GeoTopology` — one-way delays between sites, within a site
  (intra-data-center), and over last-mile access links.

The inter-region one-way delays below are representative public
measurements between EC2 regions circa 2015 (the paper's era): e.g.
EU↔NA ~45 ms, AU↔EU ~150 ms one-way.  They reproduce the *shape* of
Fig. 7 — AU pairs sit one MOS band below intra-Atlantic pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Region:
    """A continent-scale region, e.g. ``Region("EU", "Europe")``."""

    code: str
    name: str


#: The four regions of the paper's deployment (Fig. 7).
EC2_REGIONS = {
    "AU": Region("AU", "Australia (ap-southeast-2)"),
    "EU": Region("EU", "Europe (eu-west-1)"),
    "NA": Region("NA", "North America (us-east-1)"),
    "SA": Region("SA", "South America (sa-east-1)"),
}

#: One-way inter-region delays in seconds (symmetric).  Sources:
#: public EC2 inter-region RTT measurements (halved), 2014-2015 era.
_INTER_REGION_OWD = {
    ("AU", "EU"): 0.165,
    ("AU", "NA"): 0.110,
    ("AU", "SA"): 0.170,
    ("EU", "NA"): 0.045,
    ("EU", "SA"): 0.095,
    ("NA", "SA"): 0.060,
}

#: One-way delay within a data center (Herd intra-zone hops).
INTRA_SITE_OWD = 0.0005

#: One-way delay between two sites in the same region but different
#: data centers (large jurisdictions with several providers).
INTRA_REGION_OWD = 0.010

#: Typical last-mile access delay for clients/SPs on broadband,
#: university, or home networks (one way, to the region backbone).
DEFAULT_ACCESS_OWD = 0.020
DEFAULT_ACCESS_JITTER = 0.003


@dataclass(frozen=True)
class Site:
    """A data center: the physical home of a Herd zone's mixes."""

    site_id: str
    region_code: str

    @property
    def region(self) -> Region:
        return EC2_REGIONS[self.region_code]


class GeoTopology:
    """Delay oracle between sites and for access links.

    ``one_way_delay(a, b)`` composes:

    * 0.5 ms within a site,
    * 10 ms between sites of the same region,
    * the EC2 matrix between regions.
    """

    def __init__(self, sites: Optional[List[Site]] = None):
        self.sites: Dict[str, Site] = {}
        for site in sites or []:
            self.add_site(site)

    def add_site(self, site: Site) -> Site:
        if site.region_code not in EC2_REGIONS:
            raise ValueError(f"unknown region {site.region_code!r}")
        if site.site_id in self.sites:
            raise ValueError(f"duplicate site id {site.site_id!r}")
        self.sites[site.site_id] = site
        return site

    def inter_region_delay(self, region_a: str, region_b: str) -> float:
        """One-way backbone delay between two regions."""
        if region_a == region_b:
            return INTRA_REGION_OWD
        key: Tuple[str, str] = tuple(sorted((region_a, region_b)))
        try:
            return _INTER_REGION_OWD[key]
        except KeyError:
            raise ValueError(f"no delay data for region pair {key}")

    def one_way_delay(self, site_a: str, site_b: str) -> float:
        """One-way delay between two sites."""
        a = self.sites[site_a]
        b = self.sites[site_b]
        if site_a == site_b:
            return INTRA_SITE_OWD
        if a.region_code == b.region_code:
            return INTRA_REGION_OWD
        return self.inter_region_delay(a.region_code, b.region_code)

    def access_delay(self, site_id: str, region_code: str,
                     access_owd: float = DEFAULT_ACCESS_OWD) -> float:
        """One-way delay from an end host in ``region_code`` to a mix at
        ``site_id``: last mile plus any backbone distance."""
        site = self.sites[site_id]
        backbone = 0.0
        if site.region_code != region_code:
            backbone = self.inter_region_delay(site.region_code,
                                               region_code)
        return access_owd + backbone


def default_topology() -> GeoTopology:
    """The paper's 4-zone deployment: one site per region."""
    return GeoTopology([
        Site("dc-au", "AU"),
        Site("dc-eu", "EU"),
        Site("dc-na", "NA"),
        Site("dc-sa", "SA"),
    ])

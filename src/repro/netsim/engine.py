"""Deterministic discrete-event loop with a virtual clock.

All Herd protocol simulations run on this loop: packet deliveries,
chaff-clock ticks, call arrivals from the workload trace, and directory
rate-adjustment epochs are all events.  Determinism (a seeded RNG plus a
stable tie-break on the heap) makes every experiment in the benchmark
harness reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence) so that events
    scheduled earlier at the same timestamp run first."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self.cancelled = True


class EventLoop:
    """A priority-queue event loop with virtual time in seconds.

    Parameters
    ----------
    seed:
        Seed for the loop's :class:`random.Random`, shared by every
        component that needs randomness (links' jitter/loss, protocol
        decisions) so one seed reproduces a whole run.
    """

    def __init__(self, seed: int = 0):
        self._queue = []
        self._counter = itertools.count()
        #: Packet ids are allocated per loop, not per process, so two
        #: identically-seeded runs in one interpreter stamp identical
        #: ids (the determinism contract; see netsim.packet).
        self._packet_ids = itertools.count()
        self._now = 0.0
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Optional observability hook (see :class:`repro.obs
        #: .instrument.LoopHook`); installed by
        #: :meth:`repro.obs.instrument.Herdscope.attach_loop`.
        self.obs = None
        #: Optional phase-profiler hook (same duck-typed protocol);
        #: installed by :meth:`repro.obs.prof.profiler.PhaseProfiler
        #: .attach_loop`.  Detached cost: one ``is not None`` test
        #: per event.
        self.prof = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def next_packet_id(self) -> int:
        """Allocate the next loop-local packet id (stamped onto
        packets by :meth:`~repro.netsim.link.Link.transmit`)."""
        return next(self._packet_ids)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = Event(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        if self.obs is not None:
            self.obs.scheduled(self, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        if self.obs is not None:
            self.obs.scheduled(self, event)
        return event

    def schedule_periodic(self, interval: float,
                          callback: Callable[[], None],
                          start_delay: Optional[float] = None) -> Event:
        """Schedule ``callback`` every ``interval`` seconds.

        Returns the *first* event; cancelling it stops the recurrence
        (each firing checks the original handle's ``cancelled`` flag).
        """
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        handle = Event(0.0, -1, callback)  # master cancellation handle

        def fire():
            if handle.cancelled:
                return
            callback()
            self.schedule(interval, fire)

        first_delay = interval if start_delay is None else start_delay
        self.schedule(first_delay, fire)
        return handle

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is
        empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_processed += 1
            if self.obs is not None:
                self.obs.fired(self, event)
            if self.prof is not None:
                self.prof.count("schedule", calls=1)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, virtual time passes
        ``until``, or ``max_events`` have been processed.

        ``_now`` advances to ``until`` (never backwards) on every exit
        path where the queue is exhausted — including when it holds
        only cancelled events, which are drained without counting
        toward ``max_events``.
        """
        processed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if max_events is not None and processed >= max_events:
                return
            if until is not None and next_event.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            processed += 1
        if until is not None and until > self._now:
            self._now = until

    def cancel_all(self) -> None:
        """Cancel every queued event and empty the queue.

        Outstanding :class:`Event` handles (including the master
        handles of periodic schedules) observe ``cancelled`` so nothing
        re-arms itself.  Used by fault injectors and tests to tear a
        simulation down cleanly mid-run.

        When an observability hook is attached, it is told how many
        live events were cancelled and drains every trace span the
        cancelled events would have closed — a mid-run teardown must
        not leak open spans into the next run.
        """
        n_cancelled = 0
        for event in self._queue:
            if not event.cancelled:
                n_cancelled += 1
            event.cancel()
        self._queue.clear()
        if self.obs is not None:
            self.obs.cancelled_all(self, n_cancelled)

    def pending(self) -> int:
        """Number of uncancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

"""The adversary's view of a link: time series of encrypted packets.

Herd's threat model (§3): "The adversary is able to observe the time
series of encrypted traffic on all Herd links as part of a global,
passive traffic analysis attack."  A :class:`LinkObserver` records
exactly that — (timestamp, size, src, dst) — and deliberately has no
access to payload bytes, packet ``kind``, or circuit IDs.

The attack implementations in :mod:`repro.attacks` consume these
observations; nothing else about the simulation leaks to them, so an
attack that succeeds here would succeed against the real wire image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.sharding import shard_crossing


@shard_crossing
@dataclass(frozen=True)
class Observation:
    """One packet sighting on a tapped link.

    Declared shard-crossing: zone workers stream their observation
    logs back to the merge step, so every field must survive pickling
    (HL104 enforces this statically)."""

    time: float
    size: int
    src: str
    dst: str


class LinkObserver:
    """Collects packet sightings, optionally for many links at once.

    The same observer instance can be attached to every link in a
    deployment to model a *global* passive adversary, or to a subset to
    model a local one.
    """

    def __init__(self, name: str = "adversary"):
        self.name = name
        self.observations: List[Observation] = []

    def record(self, time: float, packet, src: str, dst: str) -> None:
        """Called by :class:`~repro.netsim.link.Link` on every
        transmission attempt.  Only wire-visible fields are stored."""
        self.observations.append(
            Observation(time=time, size=packet.size, src=src, dst=dst))

    def record_batch(self, time: float, batch, src: str,
                     dst: str) -> None:
        """Called by :meth:`~repro.netsim.link.Link.transmit_batch`
        with a whole round's cell vector.  One sighting is stored per
        cell, in emission order — byte-identical to what per-packet
        transmission of the same cells would have recorded (the
        observational-equivalence contract, DESIGN.md §9)."""
        append = self.observations.append
        for size in batch.sizes:
            append(Observation(time=time, size=size, src=src, dst=dst))

    def record_runs(self, time: float, src: str, dst: str,
                    sizes, counts) -> None:
        """Called by the vectorized wire plane (``batch-v2``) with one
        (link, round) aggregate image: parallel run-length arrays.
        The adversary stores per-cell sightings, so runs expand here —
        ``counts[i]`` identical sightings per run, in emission order,
        byte-identical to the per-cell engines' streams (the
        observational-equivalence contract, DESIGN.md §9/§13)."""
        observations = self.observations
        for size, count in zip(sizes, counts):
            observations.extend(
                [Observation(time=time, size=size, src=src, dst=dst)]
                * count)

    def time_series(self, src: str, dst: str,
                    bin_width: float) -> Dict[int, int]:
        """Bytes-per-bin histogram for one directed link — the raw
        material of a correlation attack."""
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        series: Dict[int, int] = {}
        for obs in self.observations:
            if obs.src == src and obs.dst == dst:
                idx = int(obs.time / bin_width)
                series[idx] = series.get(idx, 0) + obs.size
        return series

    def directed_pairs(self) -> Iterable[Tuple[str, str]]:
        """All (src, dst) pairs with at least one sighting."""
        return sorted({(o.src, o.dst) for o in self.observations})

    def rate_changes(self, src: str, dst: str, bin_width: float,
                     threshold: float = 0.0) -> List[int]:
        """Bins where the observed rate changed by more than
        ``threshold`` bytes relative to the previous bin.  Constant-rate
        chaffed links produce an empty (or loss-noise-only) list."""
        series = self.time_series(src, dst, bin_width)
        if not series:
            return []
        changes = []
        lo, hi = min(series), max(series)
        prev = series.get(lo, 0)
        for idx in range(lo + 1, hi + 1):
            cur = series.get(idx, 0)
            if abs(cur - prev) > threshold:
                changes.append(idx)
            prev = cur
        return changes

    def clear(self) -> None:
        self.observations.clear()

"""Bidirectional network links with delay, bandwidth, jitter, and loss.

Links model the paths Herd traffic traverses: intra-data-center hops
(sub-millisecond), inter-region backbone paths (EC2 RTT matrix), and
last-mile access links for clients and superpeers.  The delay model is

    one_way_delay + serialization(size / bandwidth) + jitter ~ N(0, σ)

with independent random loss.  Observers registered on a link see every
transmitted packet's (time, size, direction) — the adversary's view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.packet import Packet
from repro.netsim.taps import offer_runs


@dataclass
class LinkStats:
    """Per-direction transmission counters."""

    packets: int = 0
    bytes: int = 0
    dropped: int = 0


class Link:
    """A bidirectional point-to-point link between two nodes.

    Parameters
    ----------
    loop:
        The :class:`~repro.netsim.engine.EventLoop` used for delivery
        scheduling and randomness.
    a, b:
        The two :class:`~repro.netsim.node.Node` endpoints.
    one_way_delay:
        Propagation delay, seconds.
    bandwidth_bps:
        Link capacity in *bytes* per second; ``None`` means unlimited
        (no serialization delay).
    loss_rate:
        Independent drop probability per packet.
    jitter_std:
        Standard deviation of Gaussian delay jitter, seconds (clamped so
        total delay never goes negative).
    """

    def __init__(self, loop, a, b, one_way_delay: float = 0.0,
                 bandwidth_bps: Optional[float] = None,
                 loss_rate: float = 0.0, jitter_std: float = 0.0,
                 fifo: bool = False):
        if one_way_delay < 0:
            raise ValueError("one_way_delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if fifo and bandwidth_bps is None:
            raise ValueError("fifo queueing requires a bandwidth")
        self.loop = loop
        self.a = a
        self.b = b
        self.one_way_delay = one_way_delay
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self.jitter_std = jitter_std
        #: With fifo=True the link models a transmit queue: packets
        #: serialize one after another per direction, so bursts queue
        #: behind each other instead of overlapping.
        self.fifo = fifo
        self._tx_free_at = {a.name: 0.0, b.name: 0.0}
        self.stats = {a.name: LinkStats(), b.name: LinkStats()}
        self._observers: List = []
        #: Optional phase-profiler hook (duck-typed, like
        #: ``EventLoop.obs``); times the observer fan-out under the
        #: ``adversary-observe`` phase when attached.
        self.prof = None
        a.attach_link(b.name, self)
        b.attach_link(a.name, self)

    def add_observer(self, observer) -> None:
        """Attach an observer; it sees (time, size, src, dst) for every
        packet offered to the link (including ones later dropped — a
        tap sees the transmission attempt).  Observers that additionally
        define ``record_drop`` (e.g. the metrics
        :class:`~repro.obs.instrument.LinkTap`) are also told about
        losses; the adversary :class:`~repro.netsim.observer
        .LinkObserver` deliberately does not, since a wire tap cannot
        distinguish a dropped packet from a delivered one."""
        self._observers.append(observer)

    def other(self, node):
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def _delay_for(self, packet: Packet, sender_name: str) -> float:
        delay = self.one_way_delay
        if self.bandwidth_bps is not None:
            serialization = packet.size / self.bandwidth_bps
            if self.fifo:
                # Wait for the transmitter to drain earlier packets.
                start = max(self.loop.now,
                            self._tx_free_at[sender_name])
                finish = start + serialization
                self._tx_free_at[sender_name] = finish
                delay += finish - self.loop.now
            else:
                delay += serialization
        if self.jitter_std > 0:
            delay += abs(self.loop.rng.gauss(0.0, self.jitter_std))
        return delay

    def transmit(self, sender, packet: Packet) -> None:
        """Send ``packet`` from ``sender`` to the other endpoint.

        This is the per-packet compatibility path — one scheduled
        delivery event per packet; :meth:`transmit_batch` carries a
        whole round's cells in one call.  Existing per-packet callers
        keep working unchanged (and warning-free)."""
        receiver = self.other(sender)
        packet.sent_at = self.loop.now
        if packet.packet_id is None:
            packet.packet_id = self.loop.next_packet_id()
        stats = self.stats[sender.name]
        prof = self.prof
        if prof is not None:
            prof.begin("adversary-observe")
        for obs in self._observers:
            obs.record(self.loop.now, packet, sender.name, receiver.name)
        if prof is not None:
            prof.end(cells=1)
        if self.loss_rate > 0 and self.loop.rng.random() < self.loss_rate:
            stats.dropped += 1
            for obs in self._observers:
                record_drop = getattr(obs, "record_drop", None)
                if record_drop is not None:
                    record_drop(self.loop.now, packet, sender.name,
                                receiver.name)
            return
        stats.packets += 1
        stats.bytes += packet.size
        self.loop.schedule(self._delay_for(packet, sender.name),
                           lambda: receiver.receive(packet))

    # -- round-synchronous batch path (DESIGN.md §9) ---------------------------

    def _batch_delay(self, batch, sender_name: str) -> float:
        """Delivery delay for a whole batch: the batch serializes as a
        unit and draws at most one jitter sample, so a constant-rate
        round costs O(1) rng draws and O(1) heap events per link."""
        delay = self.one_way_delay
        if self.bandwidth_bps is not None:
            serialization = batch.total_bytes() / self.bandwidth_bps
            if self.fifo:
                start = max(self.loop.now,
                            self._tx_free_at[sender_name])
                finish = start + serialization
                self._tx_free_at[sender_name] = finish
                delay += finish - self.loop.now
            else:
                delay += serialization
        if self.jitter_std > 0:
            delay += abs(self.loop.rng.gauss(0.0, self.jitter_std))
        return delay

    def transmit_batch(self, sender, batch,
                       inline: Optional[bool] = None) -> None:
        """Send one round's cell vector from ``sender`` to the other
        endpoint as a single transmission.

        Observers defining ``record_batch`` see the vector directly
        (O(1) calls per round); others fall back to per-cell
        ``record`` with lightweight views, so the adversary's
        observation stream is identical to the per-packet engine's.
        Loss draws happen per cell, in emission order — the same rng
        consumption as per-packet transmission.

        ``inline``: deliver synchronously when the total delay is zero
        (the default), skipping the heap entirely — the delivery
        timestamp is unchanged, only the event is saved.  Pass
        ``inline=False`` to force a scheduled delivery event.
        """
        if not len(batch):
            return
        receiver = self.other(sender)
        stats = self.stats[sender.name]
        prof = self.prof
        if prof is not None:
            prof.begin("adversary-observe")
        for obs in self._observers:
            record_batch = getattr(obs, "record_batch", None)
            if record_batch is not None:
                record_batch(self.loop.now, batch, sender.name,
                             receiver.name)
            else:
                for cell in batch.cells():
                    obs.record(self.loop.now, cell, sender.name,
                               receiver.name)
        if prof is not None:
            prof.end(cells=len(batch))
        delivered = batch
        if self.loss_rate > 0:
            from repro.netsim.rounds import CellBatch, CellView
            rng = self.loop.rng
            delivered = CellBatch(batch.src, batch.dst,
                                  batch.round_index)
            n_dropped = 0
            for payload, size, kind, circuit_id in zip(
                    batch.payloads, batch.sizes, batch.kinds,
                    batch.circuit_ids):
                if rng.random() < self.loss_rate:
                    n_dropped += 1
                    for obs in self._observers:
                        record_drop = getattr(obs, "record_drop", None)
                        if record_drop is not None:
                            record_drop(
                                self.loop.now,
                                CellView(payload, size, kind,
                                         circuit_id, sender.name,
                                         receiver.name),
                                sender.name, receiver.name)
                else:
                    delivered.append(payload, kind=kind,
                                     circuit_id=circuit_id)
            stats.dropped += n_dropped
            if not len(delivered):
                return
        stats.packets += len(delivered)
        stats.bytes += delivered.total_bytes()
        delay = self._batch_delay(delivered, sender.name)
        if delay == 0.0 and (inline or inline is None):
            receiver.receive_batch(delivered)
        else:
            self.loop.schedule(
                delay, lambda: receiver.receive_batch(delivered))

    def transmit_vector(self, sender, vector,
                        inline: Optional[bool] = None) -> None:
        """Send one round's *aggregate* wire image — a
        :class:`~repro.netsim.rounds.CellVector` of run-length
        (size, count) pairs — from ``sender`` to the other endpoint.

        The vectorized path of the ``batch-v2`` plane: observer
        fan-out goes through :func:`~repro.netsim.taps.offer_runs`
        (``record_runs`` when the tap has it, per-cell expansion in
        emission order otherwise) and stats update with one add per
        run, so a constant-rate round costs O(runs) instead of
        O(cells).  Lossy links cannot be expressed aggregately —
        which cells drop is a per-cell draw — so they expand once and
        take :meth:`transmit_batch`, consuming rng identically."""
        if not len(vector):
            return
        if self.loss_rate > 0:
            self.transmit_batch(sender, vector.to_batch(),
                                inline=inline)
            return
        receiver = self.other(sender)
        stats = self.stats[sender.name]
        prof = self.prof
        if prof is not None:
            prof.begin("adversary-observe")
        sizes, counts = vector.size_runs()
        for obs in self._observers:
            offer_runs(obs, self.loop.now, sender.name, receiver.name,
                       sizes, counts)
        if prof is not None:
            prof.end(cells=len(vector))
        stats.packets += len(vector)
        stats.bytes += vector.total_bytes()
        delay = self._batch_delay(vector, sender.name)
        if delay == 0.0 and (inline or inline is None):
            receiver.receive_batch(vector)
        else:
            self.loop.schedule(
                delay, lambda: receiver.receive_batch(vector))

    def utilization_bps(self, direction_from: str, window: float,
                        now: Optional[float] = None) -> float:
        """Average offered load from one endpoint in bytes/second over
        the whole run (simple cumulative estimate used by directories)."""
        now = self.loop.now if now is None else now
        if now <= 0:
            return 0.0
        return self.stats[direction_from].bytes / now

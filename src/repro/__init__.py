"""Herd: a scalable, traffic-analysis resistant anonymity network for
VoIP systems — a full Python reproduction of the SIGCOMM 2015 paper by
Le Blond, Choffnes, Caldwell, Druschel, and Merritt.

Package map
-----------

* :mod:`repro.core` — the Herd protocol: zones, mixes, clients,
  superpeers, circuits, rendezvous, chaffing, network coding, channel
  allocation, signaling, blacklisting, and the security invariants.
* :mod:`repro.crypto` — from-scratch X25519 / Ed25519 /
  ChaCha20-Poly1305 / HKDF, PKI, DTLS-like links, onion encryption.
* :mod:`repro.netsim` — discrete-event network simulator with EC2
  geography and adversary link observers.
* :mod:`repro.voip` — codecs, RTP, and the ITU-T G.107 E-Model.
* :mod:`repro.workload` — synthetic mobile call traces and social
  graphs matching the paper's published statistics.
* :mod:`repro.attacks` — intersection, correlation, and long-term
  intersection attacks.
* :mod:`repro.baselines` — Tor and Drac comparison models.
* :mod:`repro.analysis` — anonymity/bandwidth/cost/CPU analytics.
* :mod:`repro.simulation` — trace-driven and packet-level deployment
  simulations, plus an in-memory testbed.

Quick start
-----------

>>> from repro.simulation.testbed import build_testbed
>>> bed = build_testbed()
>>> alice = bed.add_client("alice", "zone-EU")
>>> bob = bed.add_client("bob", "zone-NA")
>>> bed.ready_for_calls("alice"); bed.ready_for_calls("bob")
>>> session = bed.call("alice", "bob")
"""

__version__ = "1.0.0"

from repro.simulation.testbed import HerdTestbed, build_testbed

__all__ = ["HerdTestbed", "build_testbed", "__version__"]

"""Herd: a scalable, traffic-analysis resistant anonymity network for
VoIP systems — a full Python reproduction of the SIGCOMM 2015 paper by
Le Blond, Choffnes, Caldwell, Druschel, and Merritt.

Package map
-----------

* :mod:`repro.core` — the Herd protocol: zones, mixes, clients,
  superpeers, circuits, rendezvous, chaffing, network coding, channel
  allocation, signaling, blacklisting, and the security invariants.
* :mod:`repro.crypto` — from-scratch X25519 / Ed25519 /
  ChaCha20-Poly1305 / HKDF, PKI, DTLS-like links, onion encryption.
* :mod:`repro.netsim` — discrete-event network simulator with EC2
  geography and adversary link observers.
* :mod:`repro.voip` — codecs, RTP, and the ITU-T G.107 E-Model.
* :mod:`repro.workload` — synthetic mobile call traces and social
  graphs matching the paper's published statistics.
* :mod:`repro.attacks` — intersection, correlation, and long-term
  intersection attacks.
* :mod:`repro.baselines` — Tor and Drac comparison models.
* :mod:`repro.analysis` — anonymity/bandwidth/cost/CPU analytics.
* :mod:`repro.simulation` — trace-driven and packet-level deployment
  simulations, plus an in-memory testbed.
* :mod:`repro.obs` — herdscope: virtual-time metrics, traces, and
  exporters.
* :mod:`repro.api` — the :class:`~repro.api.Simulation` facade in
  front of testbed, live-zone, and chaos runs.
* :mod:`repro.scenario` — the declarative composed-adversity scenario
  engine: workload × churn × faults × adversary from
  ``scenarios/*.toml``, replayable on both execution engines with a
  pinned determinism key.

Quick start
-----------

>>> from repro import SimConfig, Simulation
>>> report = Simulation(SimConfig(seed=7, call_pairs=2)).run(rounds=50)
>>> report.rounds_run
50
>>> print(report.to_prometheus())  # doctest: +SKIP
"""

__version__ = "1.1.0"

from repro.api import RunReport, SimConfig, Simulation
from repro.obs.metrics import MetricsRegistry
from repro.simulation.testbed import HerdTestbed, build_testbed

# After the simulation chain: repro.scenario's engine imports the
# simulation package, whose chaos module imports repro.scenario.model —
# loading simulation first keeps that cycle's lazy edge lazy.
from repro.scenario import Scenario, ScenarioReport, run_scenario

__all__ = [
    "HerdTestbed",
    "MetricsRegistry",
    "RunReport",
    "Scenario",
    "ScenarioReport",
    "SimConfig",
    "Simulation",
    "build_testbed",
    "run_scenario",
    "__version__",
]

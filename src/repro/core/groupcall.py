"""Group calls — the paper's stated future work (§5: "Future work
includes supporting group and video calls").

Design: the *host* (conference initiator) establishes one ordinary
zone-anonymous :class:`~repro.core.rendezvous.CallSession` per invitee
and acts as the audio bridge, the way small-conference VoIP systems
work.  Each leg is an independent Herd call, so:

* every participant keeps zone anonymity with respect to every other
  participant (they each see only their own rendezvous path to the
  host),
* participants do not learn each other's identities unless the host
  reveals them — the host relays (optionally re-encoded) audio,
* the host's client-link chaffing must cover N concurrent calls, so a
  conference of N legs needs a rate multiple ≥ N (the bandwidth cost
  the paper's future-work framing anticipates).

:class:`GroupCall` implements the bridge with simple PCM mixing
(saturating sum of linear samples), per-leg sequence tracking, and
join/leave during the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import HerdClient
from repro.core.rendezvous import CallError, CallSession, \
    RendezvousService


def mix_pcm(frames: Sequence[bytes], sample_width: int = 1) -> bytes:
    """Mix equal-length linear PCM frames by saturating addition.

    ``sample_width`` is bytes per sample (1 for 8-bit linear — the
    decoded form of G.711 in this model).
    """
    if not frames:
        raise ValueError("need at least one frame to mix")
    length = len(frames[0])
    if any(len(f) != length for f in frames):
        raise ValueError("all frames must have equal length")
    if sample_width != 1:
        raise ValueError("only 8-bit linear PCM is modelled")
    out = bytearray(length)
    for i in range(length):
        total = sum(f[i] - 128 for f in frames)  # center at 0
        out[i] = max(0, min(255, total + 128))
    return bytes(out)


@dataclass
class GroupLeg:
    """One invitee's leg of the conference."""

    participant: HerdClient
    session: CallSession
    #: Audio frames received from this participant, in order.
    received: List[bytes] = field(default_factory=list)


class GroupCall:
    """An N-party conference bridged at the host."""

    def __init__(self, service: RendezvousService, host: HerdClient,
                 frame_bytes: int = 160):
        if host.circuit is None:
            raise CallError("host needs a standing circuit")
        self.service = service
        self.host = host
        self.frame_bytes = frame_bytes
        self.legs: Dict[str, GroupLeg] = {}

    # -- membership ------------------------------------------------------------

    def invite(self, participant: HerdClient) -> GroupLeg:
        """Add a participant: one zone-anonymous call host→invitee.

        Each leg gets its own host-side circuit — a circuit carries one
        concurrent call, so an N-party conference uses N circuits at
        the host (matching :meth:`required_rate_multiple`)."""
        if participant.client_id in self.legs:
            raise CallError(f"{participant.client_id} already joined")
        if participant.client_id == self.host.client_id:
            raise CallError("the host is implicitly in the call")
        self.service.build_standing_circuit(self.host)
        session = self.service.establish_call(
            self.host, participant.certificate, participant)
        leg = GroupLeg(participant=participant, session=session)
        self.legs[participant.client_id] = leg
        return leg

    def drop(self, client_id: str) -> None:
        if client_id not in self.legs:
            raise KeyError(f"{client_id} is not in the call")
        del self.legs[client_id]

    @property
    def participants(self) -> List[str]:
        return sorted(self.legs)

    @property
    def size(self) -> int:
        """Participants including the host."""
        return len(self.legs) + 1

    def required_rate_multiple(self) -> int:
        """Chaffed client-link rate the host needs (one call unit per
        concurrent leg)."""
        return max(1, len(self.legs))

    # -- audio ------------------------------------------------------------------

    def _check_frame(self, frame: bytes) -> None:
        if len(frame) != self.frame_bytes:
            raise ValueError(
                f"frames must be {self.frame_bytes} bytes")

    def round(self, speaking: Dict[str, bytes],
              host_frame: Optional[bytes] = None) -> Dict[str, bytes]:
        """One conference frame interval.

        ``speaking`` maps participant id → their outgoing frame (silent
        participants are simply absent).  ``host_frame`` is the host's
        own audio.  Each speaker's frame travels its leg to the host
        (really relayed through the mixes), the host mixes everyone
        else's audio per listener, and sends the mix back down each
        leg.  Returns listener id → the frame delivered to them.
        """
        silence = bytes([128]) * self.frame_bytes
        # 1. Collect audio at the host over each leg.
        at_host: Dict[str, bytes] = {}
        for client_id, frame in speaking.items():
            leg = self.legs.get(client_id)
            if leg is None:
                raise KeyError(f"{client_id} is not in the call")
            self._check_frame(frame)
            delivered = leg.session.send_voice("callee_to_caller", frame)
            at_host[client_id] = delivered
        if host_frame is not None:
            self._check_frame(host_frame)
            at_host[self.host.client_id] = host_frame

        # 2. Mix per listener (everyone except themselves) and send.
        out: Dict[str, bytes] = {}
        for client_id, leg in self.legs.items():
            sources = [f for src, f in at_host.items()
                       if src != client_id]
            mixed = mix_pcm(sources) if sources else silence
            delivered = leg.session.send_voice("caller_to_callee",
                                               mixed)
            leg.received.append(delivered)
            out[client_id] = delivered
        # The host hears everyone but itself.
        host_sources = [f for src, f in at_host.items()
                        if src != self.host.client_id]
        out[self.host.client_id] = (mix_pcm(host_sources)
                                    if host_sources else silence)
        return out

"""The join protocol (§3.5).

"When a client wishes to join the system, it chooses a zone and is
redirected by that zone's directory to a mix within the zone.  The
client then establishes a symmetric key s with the mix [...] Finally,
the mix either adopts the client with a direct link, or redirects the
client to one or more of the superpeers connected to the mix."

:func:`join_zone` drives the whole exchange against live directory,
mix, and SP objects, and returns a :class:`JoinResult` describing where
the client ended up.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import HerdClient, derive_client_mix_key
from repro.core.directory import ZoneDirectory
from repro.core.mix import Mix
from repro.core.retry import (
    BackoffPolicy,
    VirtualClock,
    call_with_retries,
)
from repro.core.superpeer import SuperPeer

_numeric_ids = itertools.count(0)


@dataclass
class JoinResult:
    """Outcome of a join: the adopting mix and any SP attachments."""

    mix_id: str
    direct: bool
    attachments: List[tuple] = field(default_factory=list)  # (sp, channel, slot)


def join_zone(client: HerdClient, directory: ZoneDirectory,
              mixes: Dict[str, Mix],
              superpeers: Optional[Dict[str, SuperPeer]] = None,
              channel_choice: Optional[Sequence[int]] = None,
              rng: Optional[random.Random] = None,
              exclude_mix: Optional[str] = None) -> JoinResult:
    """Run the §3.5 join protocol.

    Parameters
    ----------
    client:
        The joining client (its ``zone_id`` selects the zone).
    directory:
        The zone's directory (performs the mix redirection and issues
        the client certificate).
    mixes:
        Live mixes of the zone, keyed by id.
    superpeers:
        If provided and the adopting mix has channels configured, the
        client is redirected to SPs: it attaches to ``client.k``
        channels chosen by the mix (``channel_choice`` overrides the
        choice for tests).
    exclude_mix:
        A mix to avoid — used when re-joining after that mix failed
        (§3.5: "the client contacts another mix in the same zone").
    """
    rng = rng or random.Random(0)
    if client.zone_id != directory.zone.zone_id:
        raise ValueError("client is joining through the wrong directory")
    if client.joined:
        raise RuntimeError("client already joined")

    # 1. The directory redirects the client to a mix within the zone.
    mix_id = directory.pick_mix(exclude=exclude_mix)
    mix = mixes[mix_id]

    # 2. Client ↔ mix key establishment (symmetric key s).
    eph_pub, eph = client.begin_join()
    shared = mix.short_term.exchange(eph_pub)
    session_key = derive_client_mix_key(
        shared, eph_pub, mix.short_term.public_bytes)
    numeric_id = next(_numeric_ids)
    mix.adopt_client(client.client_id, session_key)

    # 3. The directory certifies the client for this zone (re-joining
    # clients keep their existing certificate).
    certificate = directory.certificate_of(client.client_id)
    if certificate is None:
        certificate = directory.enroll(
            client.client_id, "client", client.identity.public_bytes,
            client.short_term.public_bytes)
    client.finish_join(eph, mix_id, mix.short_term.public_bytes,
                       numeric_id, certificate)
    assert client.session_key.key == session_key.key, \
        "join key agreement mismatch"

    # 4. Adoption: direct link, or redirection to superpeers.
    if not superpeers or not mix.channels:
        return JoinResult(mix_id=mix_id, direct=True)

    if channel_choice is None:
        occupancy = {ch_id: ch.member_count()
                     for ch_id, ch in mix.channels.items()}
        channel_choice = []
        for _ in range(client.k):
            candidates = [c for c in occupancy if c not in channel_choice]
            min_occ = min(occupancy[c] for c in candidates)
            least = [c for c in candidates if occupancy[c] == min_occ]
            pick = rng.choice(least)
            channel_choice.append(pick)
            occupancy[pick] += 1
    slots = mix.attach_client_to_channels(client.client_id,
                                          list(channel_choice),
                                          numeric_id)
    result = JoinResult(mix_id=mix_id, direct=False)
    sp_by_channel = {}
    for sp in superpeers.values():
        for ch_id in sp.channel_clients:
            sp_by_channel[ch_id] = sp
    for ch_id, slot in slots.items():
        sp = sp_by_channel.get(ch_id)
        if sp is None:
            raise ValueError(f"channel {ch_id} is not hosted by any SP")
        sp_slot = sp.add_client(ch_id, client.client_id)
        if sp_slot != slot:
            raise RuntimeError("mix and SP slot assignment diverged")
        client.attach(sp.sp_id, ch_id, slot)
        result.attachments.append((sp.sp_id, ch_id, slot))
    return result


@dataclass
class JoinRetryResult:
    """A join that (eventually) succeeded, and what it took."""

    result: JoinResult
    attempts: int
    backoff_s: float


def join_with_retries(client: HerdClient, directory: ZoneDirectory,
                      mixes: Dict[str, Mix],
                      superpeers: Optional[Dict[str, SuperPeer]] = None,
                      channel_choice: Optional[Sequence[int]] = None,
                      rng: Optional[random.Random] = None,
                      exclude_mix: Optional[str] = None,
                      policy: Optional[BackoffPolicy] = None,
                      clock: Optional[VirtualClock] = None
                      ) -> JoinRetryResult:
    """Run :func:`join_zone` with bounded exponential backoff (§3.5).

    After an unclean mix crash the directory may keep redirecting
    joins to the dead mix until it detects the failure; each such
    attempt fails with ``KeyError`` and is retried after a backoff
    accounted on the virtual ``clock``.  A partially completed join is
    rolled back with :meth:`~repro.core.client.HerdClient.leave` before
    the retry.  Raises :class:`~repro.core.retry.RetryError` when the
    policy's attempts are exhausted.
    """
    if client.joined:
        raise RuntimeError("client already joined")
    policy = policy or BackoffPolicy()
    clock = clock or VirtualClock()

    def attempt() -> JoinResult:
        try:
            return join_zone(client, directory, mixes,
                             superpeers=superpeers,
                             channel_choice=channel_choice, rng=rng,
                             exclude_mix=exclude_mix)
        except Exception:
            if client.joined:
                client.leave()
            raise

    outcome = call_with_retries(
        attempt, policy=policy, clock=clock, rng=rng,
        retry_on=(KeyError, RuntimeError, ValueError))
    return JoinRetryResult(result=outcome.value,
                           attempts=outcome.attempts,
                           backoff_s=outcome.backoff_s)

"""Chaff scheduling and link-rate control (§3.4).

Two mechanisms keep Herd links' time series independent of call
activity:

* :class:`ConstantRateChaffer` — the *client-link* policy (§3.4.1):
  every frame interval, exactly one fixed-size packet is emitted;
  payload is substituted for chaff when a call is active.  The emitted
  schedule is a function only of the clock, never of the payload.

* :class:`RateController` — the *SP- and mix-link* policy
  (§3.4.2–3.4.3): link rates are a multiple of the unit rate u, equal
  across a zone's SP links (and across intra-zone / per-zone-pair mix
  links), adjusted only at coarse epochs (hours) from aggregate
  utilization reports, "to accommodate diurnal load patterns, but [the
  changes] do not reveal individual call activity".
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.voip.codec import Codec, G711


class ConstantRateChaffer:
    """Emit one fixed-size packet per codec frame, payload or chaff.

    ``enqueue_payload`` queues outbound payload cells; ``tick`` returns
    what to send this frame: ``("payload", cell)`` or
    ``("chaff", None)``.  The *caller* of tick is a clock, so emission
    times are payload-independent by construction (invariant I6).

    ``rate_multiple`` carries n parallel slots per tick for links
    provisioned at a multiple of the unit rate.
    """

    def __init__(self, codec: Codec = G711, rate_multiple: int = 1):
        if rate_multiple < 1:
            raise ValueError("rate multiple must be at least 1")
        self.codec = codec
        self.rate_multiple = rate_multiple
        self._queue: Deque[bytes] = deque()
        self.payload_sent = 0
        self.chaff_sent = 0

    @property
    def interval(self) -> float:
        """Seconds between ticks."""
        return self.codec.frame_ms / 1000.0

    def enqueue_payload(self, cell: bytes) -> None:
        self._queue.append(cell)

    def pending(self) -> int:
        return len(self._queue)

    def tick(self) -> List[Optional[bytes]]:
        """One frame interval: returns ``rate_multiple`` slots, each a
        payload cell or None (meaning chaff)."""
        slots: List[Optional[bytes]] = []
        for _ in range(self.rate_multiple):
            if self._queue:
                slots.append(self._queue.popleft())
                self.payload_sent += 1
            else:
                slots.append(None)
                self.chaff_sent += 1
        return slots

    def tick_many(self, n_ticks: int) -> List[List[Optional[bytes]]]:
        """Round-synchronous batch entry point: ``n_ticks`` frame
        intervals at once, with O(1) counter updates.

        Returns one slot list per tick, identical to ``n_ticks``
        individual :meth:`tick` calls: queued payload fills the
        earliest slots (emission is a function of the clock, never of
        the payload — invariant I6 — so batching cannot change the
        schedule, only the bookkeeping cost).
        """
        if n_ticks < 0:
            raise ValueError("cannot tick a negative number of rounds")
        total_slots = n_ticks * self.rate_multiple
        n_payload = min(len(self._queue), total_slots)
        flat: List[Optional[bytes]] = [
            self._queue.popleft() for _ in range(n_payload)]
        flat.extend([None] * (total_slots - n_payload))
        self.payload_sent += n_payload
        self.chaff_sent += total_slots - n_payload
        return [flat[i * self.rate_multiple:(i + 1) * self.rate_multiple]
                for i in range(n_ticks)]


@dataclass
class RateDecision:
    """One epoch's outcome for a link group."""

    epoch: int
    old_rate: int
    new_rate: int
    utilization: float


class RateController:
    """Epoch-based rate control for a *group* of links.

    All links in the group (e.g., every SP link of a zone) always carry
    the same rate, an integer multiple of the unit rate u.  At each
    epoch the controller receives the group's aggregate utilization
    (active calls / provisioned capacity) and moves the rate toward a
    target band with hysteresis:

    * utilization above ``high_water`` → scale up to reach ``target``;
    * utilization below ``low_water`` → scale down to ``target``;
    * otherwise keep the current rate (no information leaks between
      epochs).

    ``min_rate`` keeps every link at ≥ 1×u even in dead hours, so an
    idle zone still carries chaff.
    """

    def __init__(self, initial_rate: int = 1, target: float = 0.5,
                 low_water: float = 0.25, high_water: float = 0.85,
                 min_rate: int = 1, max_rate: Optional[int] = None):
        if not 0 < low_water < target < high_water <= 1.0:
            raise ValueError("need 0 < low_water < target < high_water ≤ 1")
        if initial_rate < min_rate:
            raise ValueError("initial rate below minimum")
        self.rate = initial_rate
        self.target = target
        self.low_water = low_water
        self.high_water = high_water
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.history: List[RateDecision] = []

    def on_epoch(self, epoch: int, active_calls: float) -> int:
        """Report the epoch's aggregate active-call load; returns the
        rate (in multiples of u) for the next epoch."""
        if active_calls < 0:
            raise ValueError("active call count cannot be negative")
        utilization = active_calls / self.rate if self.rate else math.inf
        old = self.rate
        if utilization > self.high_water or utilization < self.low_water:
            desired = math.ceil(active_calls / self.target) \
                if active_calls > 0 else self.min_rate
            desired = max(self.min_rate, desired)
            if self.max_rate is not None:
                desired = min(self.max_rate, desired)
            self.rate = desired
        self.history.append(RateDecision(epoch, old, self.rate,
                                         utilization))
        return self.rate

    @property
    def adjustments(self) -> int:
        """Number of epochs where the rate actually changed."""
        return sum(1 for d in self.history if d.new_rate != d.old_rate)

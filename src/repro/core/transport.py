"""The Transport seam: what the round engine emits cells *into*.

The protocol layer — the dispatch state machines
(:mod:`repro.core.dispatch`), :class:`~repro.core.superpeer.SuperPeer`,
:class:`~repro.core.mix.HerdMix`, :class:`~repro.core.client
.HerdClient`, the directory and join flows — computes what every node
says each round.  *How* those cells travel is this seam: a
:class:`CellTransport` receives the round's emissions and materializes
them as a wire image an adversary could tap.

Two implementations exist, and protocol code imports **neither**:

* :class:`~repro.simulation.roundsync.WireFabric` — the simulator
  transports (``event`` / ``batch`` / ``batch-v2``): virtual-time
  netsim links, heap events or per-round vectors (DESIGN.md §9/§13).
* :class:`~repro.net.transport.UdpFabric` — the real-network
  transport (``asyncio``): every cell rides a framed UDP datagram
  between per-node asyncio endpoints over loopback, bootstrapped by
  the :mod:`repro.net.introducer` (DESIGN.md §14).

The concrete transport is chosen by name through
:func:`repro.execution.create_wire_fabric`; a
:class:`~repro.simulation.live.LiveZone` only ever talks to this
interface.  Both implementations feed the same public tap protocol
(:mod:`repro.netsim.taps`), which is what makes wiretap observations,
herdscope metrics, and report rows transport-invariant.
"""

from __future__ import annotations

from typing import Dict, Optional


class CellTransport:
    """Abstract wire plane of one zone.

    The round engine drives the transport through exactly four calls
    per round — :meth:`emit` / :meth:`emit_repeated` while computing
    the round, one :meth:`flush_round` at the round barrier — plus one
    :meth:`finalize` at end of run.  Everything else
    (:attr:`observer`, :meth:`add_tap`, the cost counters) is the
    observation surface run consumers read.
    """

    #: The adversary's tap (a :class:`~repro.netsim.observer
    #: .LinkObserver` by default); every implementation offers each
    #: round's traffic to it through :mod:`repro.netsim.taps`.
    observer = None

    def emit(self, src: str, dst: str, payload: bytes,
             kind: str = "data") -> None:
        """Queue one cell for this round's flush."""
        raise NotImplementedError

    def emit_repeated(self, src: str, dst: str, payload: bytes,
                      n: int, kind: str = "chaff") -> None:
        """Queue ``n`` wire-identical cells as one run."""
        raise NotImplementedError

    def flush_round(self, round_index: int) -> None:
        """Carry everything queued, stamped at the round's virtual
        time, and offer it to every subscribed tap."""
        raise NotImplementedError

    def finalize(self) -> Optional[Dict[str, object]]:
        """Complete deferred work (shard merges, socket teardown);
        idempotent.  Run consumers call this before reading stats."""
        raise NotImplementedError

    def add_tap(self, tap) -> None:
        """Subscribe a wire tap (the :mod:`repro.netsim.taps`
        protocol) alongside the adversary observer."""
        raise NotImplementedError

    def net_report(self) -> Optional[Dict[str, object]]:
        """Host-network side channel (wall-clock latency, datagram
        accounting) for transports that have one; ``None`` on the
        simulator planes.  Never part of any determinism surface."""
        return None

"""SP quality monitoring and blacklisting (§3.6.4).

"Mixes monitor and reject SPs with insufficient availability or
significant packet loss/jitter" and "mixes blacklist SPs that fail to
meet a high standard of packet loss rate and jitter.  Legitimate SPs
that fail to meet the standard due to an unreliable network may require
their clients to use error-correcting codes."

:class:`SPMonitor` accumulates per-SP measurement windows and flags
violators; it also drives the §3.6.1 audit path: an SP (or one of its
clients) that produces undecodable XOR rounds is asked for the buffered
full packets, the culprit is identified, and the offending *account* is
blacklisted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

#: Default quality standards, per the experimental deployment's "high
#: standard of packet loss rate and jitter".
DEFAULT_MAX_LOSS = 0.02
DEFAULT_MAX_JITTER_MS = 30.0
DEFAULT_MIN_AVAILABILITY = 0.95
DEFAULT_MIN_SAMPLES = 10


@dataclass
class SPRecord:
    """Accumulated quality samples for one SP."""

    loss_samples: List[float] = field(default_factory=list)
    jitter_samples: List[float] = field(default_factory=list)
    up_checks: int = 0
    total_checks: int = 0

    @property
    def mean_loss(self) -> float:
        if not self.loss_samples:
            return 0.0
        return sum(self.loss_samples) / len(self.loss_samples)

    @property
    def mean_jitter(self) -> float:
        if not self.jitter_samples:
            return 0.0
        return sum(self.jitter_samples) / len(self.jitter_samples)

    @property
    def availability(self) -> float:
        if self.total_checks == 0:
            return 1.0
        return self.up_checks / self.total_checks


class SPMonitor:
    """The mix's view of its superpeers' quality."""

    def __init__(self, max_loss: float = DEFAULT_MAX_LOSS,
                 max_jitter_ms: float = DEFAULT_MAX_JITTER_MS,
                 min_availability: float = DEFAULT_MIN_AVAILABILITY,
                 min_samples: int = DEFAULT_MIN_SAMPLES,
                 on_blacklist_sp: Optional[Callable[[str], None]] = None,
                 on_blacklist_client: Optional[Callable[[str], None]]
                 = None):
        self.max_loss = max_loss
        self.max_jitter_ms = max_jitter_ms
        self.min_availability = min_availability
        self.min_samples = min_samples
        self.records: Dict[str, SPRecord] = defaultdict(SPRecord)
        self.blacklisted_sps: Set[str] = set()
        self.blacklisted_clients: Set[str] = set()
        #: Fired once per SP/client the moment it enters the blacklist,
        #: so a running simulation can react *during* the run (kick off
        #: mid-call failover, stop routing joins to the SP) instead of
        #: inspecting the sets post-hoc.
        self.on_blacklist_sp = on_blacklist_sp
        self.on_blacklist_client = on_blacklist_client

    def _blacklist_sp(self, sp_id: str) -> None:
        if sp_id in self.blacklisted_sps:
            return
        self.blacklisted_sps.add(sp_id)
        if self.on_blacklist_sp is not None:
            self.on_blacklist_sp(sp_id)

    def record_quality(self, sp_id: str, loss: float,
                       jitter_ms: float) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if jitter_ms < 0:
            raise ValueError("jitter cannot be negative")
        rec = self.records[sp_id]
        rec.loss_samples.append(loss)
        rec.jitter_samples.append(jitter_ms)
        self._evaluate(sp_id)

    def record_availability(self, sp_id: str, is_up: bool) -> None:
        rec = self.records[sp_id]
        rec.total_checks += 1
        if is_up:
            rec.up_checks += 1
        self._evaluate(sp_id)

    def _evaluate(self, sp_id: str) -> None:
        rec = self.records[sp_id]
        if len(rec.loss_samples) >= self.min_samples:
            if rec.mean_loss > self.max_loss or \
                    rec.mean_jitter > self.max_jitter_ms:
                self._blacklist_sp(sp_id)
        if rec.total_checks >= self.min_samples and \
                rec.availability < self.min_availability:
            self._blacklist_sp(sp_id)

    def is_blacklisted(self, sp_id: str) -> bool:
        return sp_id in self.blacklisted_sps

    def blacklist_client(self, client_id: str) -> None:
        """Blacklist a client account identified by a round audit
        (§3.6.1: "enabling the mix to identify, drop, and blacklist the
        culprit's Herd account")."""
        if client_id in self.blacklisted_clients:
            return
        self.blacklisted_clients.add(client_id)
        if self.on_blacklist_client is not None:
            self.on_blacklist_client(client_id)

    def audit_round(self, sp_id: str, packets_by_client: Dict[str, bytes],
                    expected_by_client: Dict[str, bytes]) -> Optional[str]:
        """Compare the SP's buffered full packets against what each
        idle client *should* have sent (the mix's chaff predictions).
        Returns the first misbehaving client, blacklisting it; if every
        client's packet checks out, the SP itself forged the XOR and is
        blacklisted."""
        for client, packet in packets_by_client.items():
            expected = expected_by_client.get(client)
            if expected is not None and packet != expected:
                self.blacklist_client(client)
                return client
        self._blacklist_sp(sp_id)
        return None

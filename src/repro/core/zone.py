"""Trust zones (§3).

"Herd mixes are further partitioned into trust zones.  All mixes within
a trust zone are operated by a single provider under a single
jurisdiction.  Typically, the mixes of a trust zone are hosted in the
same data center."

A :class:`TrustZone` is the administrative grouping: it owns a
directory, a set of mixes, and the zone-level link-rate state.  It is
deliberately a plain registry — the interesting behaviour lives in the
directory (rates, rendezvous records) and the mixes (relaying).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.chaffing import RateController
from repro.core.sharding import shard_crossing


@shard_crossing
@dataclass
class ZoneConfig:
    """Static parameters of a zone.

    Declared shard-crossing: the fan-out step hands each zone worker
    its ``ZoneConfig``, so fields must stay picklable (HL104)."""

    zone_id: str
    site_id: str
    #: Channels per client (k); the paper recommends 3.
    channels_per_client: int = 3
    #: Clients per channel for SP provisioning.
    clients_per_channel: int = 10
    #: Minimum clients before the zone establishes calls (§3:
    #: "A new zone requires a minimum set of clients").
    min_clients: int = 2


class TrustZone:
    """One provider/jurisdiction: mixes plus zone-wide rate state.

    Link-rate coupling (§3.4.2–3.4.3): one :class:`RateController` for
    all the zone's SP links, one for its intra-zone mix links, and one
    per *pair* of zones for inter-zone links (owned by the
    lexicographically smaller zone and shared, mirroring the paper's
    "coordination between the directories of the two zones").
    """

    def __init__(self, config: ZoneConfig):
        self.config = config
        self.mix_ids: List[str] = []
        self.sp_rate = RateController()
        self.intra_rate = RateController()
        self.inter_rates: Dict[str, RateController] = {}

    @property
    def zone_id(self) -> str:
        return self.config.zone_id

    def add_mix(self, mix_id: str) -> None:
        if mix_id in self.mix_ids:
            raise ValueError(f"mix {mix_id} already registered")
        self.mix_ids.append(mix_id)

    def remove_mix(self, mix_id: str) -> None:
        """Prune a mix from the zone's membership — the directory's
        reaction to a detected mix failure (§3.5).  Raises ``KeyError``
        if the mix is not (or no longer) registered."""
        try:
            self.mix_ids.remove(mix_id)
        except ValueError:
            raise KeyError(f"mix {mix_id} is not registered in zone "
                           f"{self.zone_id}") from None

    def interzone_controller(self, other_zone: str) -> RateController:
        """The shared rate controller for links toward ``other_zone``."""
        if other_zone == self.zone_id:
            raise ValueError("use intra_rate for the local zone")
        return self.inter_rates.setdefault(other_zone, RateController())

    def pair_key(self, other_zone: str) -> tuple:
        return tuple(sorted((self.zone_id, other_zone)))

"""Channels and encrypted packet manifests (§3.6.1–3.6.2).

Clients attached to an SP are partitioned into *channels*; each channel
supports at most one active call.  Along with each upstream XOR packet,
the SP forwards the 4-byte *manifests* attached to each client packet:
"Each of these manifests is 4 bytes long, encrypted with s, and
includes the client's id within the channel, packet sequence number,
and a signaling bit."

Manifest cleartext layout (4 bytes)::

    bits 0-5    client id within the channel (0..63)
    bit  6      signaling bit (outgoing-call request, §3.6.2)
    bits 7-31   packet sequence number modulo 2^25

The manifest is XOR-encrypted with a keystream from the client's
session key ``s`` (nonce bound to the *manifest slot index* within the
round so the mix — which knows the channel membership — can decrypt
slot i with client i's key).  The truncated sequence number is enough
for the mix to resynchronize after "lost or delayed packets"; the full
64-bit sequence is reconstructed against the mix's expected counter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.keys import SessionKey

MANIFEST_BYTES = 4
_SEQ_MOD = 1 << 25
_MAX_CLIENT_ID = 63

_MANIFEST_PREFIX = b"mf\x00\x00"


@dataclass(frozen=True)
class ChannelManifest:
    """One decoded manifest: who sent packet #seq, and the signal bit."""

    client_id: int
    sequence: int
    signal: bool

    def __post_init__(self):
        if not 0 <= self.client_id <= _MAX_CLIENT_ID:
            raise ValueError("client id must fit in 6 bits")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")


def encode_manifest(manifest: ChannelManifest, key: SessionKey,
                    slot: int) -> bytes:
    """Encrypt a manifest with the client's session key for a round
    slot."""
    word = (manifest.client_id
            | (int(manifest.signal) << 6)
            | ((manifest.sequence % _SEQ_MOD) << 7))
    clear = struct.pack("<I", word)
    nonce = _MANIFEST_PREFIX + struct.pack("<Q", slot)
    return chacha20_encrypt(key.key, nonce, clear)


def decode_manifest(data: bytes, key: SessionKey, slot: int,
                    expected_sequence: int) -> ChannelManifest:
    """Decrypt a manifest and reconstruct the full sequence number.

    ``expected_sequence`` is the mix's next-expected counter for the
    client; the truncated 25-bit value is resolved to the nearest full
    sequence at or after ``expected_sequence - _SEQ_MOD // 2``.
    """
    if len(data) != MANIFEST_BYTES:
        raise ValueError("manifest must be 4 bytes")
    nonce = _MANIFEST_PREFIX + struct.pack("<Q", slot)
    clear = chacha20_encrypt(key.key, nonce, data)
    (word,) = struct.unpack("<I", clear)
    client_id = word & 0x3F
    signal = bool((word >> 6) & 1)
    seq_low = word >> 7
    base = max(0, expected_sequence - _SEQ_MOD // 2)
    candidate = (base - base % _SEQ_MOD) + seq_low
    if candidate < base:
        candidate += _SEQ_MOD
    return ChannelManifest(client_id=client_id, sequence=candidate,
                           signal=signal)


@dataclass
class Channel:
    """One channel at an SP/mix: its member clients and call state.

    ``members`` maps the in-channel client id (0..63) to the global
    client identifier.  ``active_call`` holds the in-channel id of the
    client currently on a call, or None.
    """

    channel_id: int
    members: Dict[int, int] = field(default_factory=dict)
    active_call: Optional[int] = None

    def add_member(self, global_client: int) -> int:
        """Attach a client; returns its in-channel id."""
        if len(self.members) > _MAX_CLIENT_ID:
            raise ValueError("channel is full (64 members)")
        in_channel_id = len(self.members)
        self.members[in_channel_id] = global_client
        return in_channel_id

    def member_count(self) -> int:
        return len(self.members)

    @property
    def is_busy(self) -> bool:
        return self.active_call is not None

    def start_call(self, in_channel_id: int) -> None:
        if in_channel_id not in self.members:
            raise KeyError(f"client slot {in_channel_id} not in channel")
        if self.is_busy:
            raise RuntimeError(f"channel {self.channel_id} already busy")
        self.active_call = in_channel_id

    def end_call(self) -> None:
        self.active_call = None

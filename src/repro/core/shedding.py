"""Load shedding and client backpressure (§3.4.2, §3.6).

Herd provisions channels for a constant rate; a flash crowd that
pushes demand past the provisioned capacity must *degrade gracefully*,
not collapse: the zone keeps every link at its constant chaffed rate
(invariants I6/I7 — an overload is invisible on the wire) while
admitting only a bounded fraction of payload cells per channel per
round.  Cells that are not admitted stay in the client's outbox — the
client experiences backpressure (added latency), never loss.

:class:`LoadShedder` is the policy object: the live zone consults it
once per channel per round for a payload budget and reports what it
admitted/deferred.  It is deliberately deterministic — budgets are a
pure function of membership, and admission is strict slot order — so
the event and batch engines shed identically (the observational-
equivalence contract, DESIGN.md §9/§10).

Note the division of labour with invariant I8: *SPs* cannot shed by
payload, because they cannot see payload.  Shedding is decided where
activity is visible — at the clients (who defer their own cells) as
orchestrated by the zone — and the SP keeps combining constant-rate
rounds throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LoadShedder:
    """Per-round payload admission control for an overloaded zone.

    Parameters
    ----------
    capacity_fraction:
        Fraction of a channel's members that may contribute a payload
        cell per round (floor, clamped to [0, members]).  0 defers
        every payload cell; 1 admits everything (no shedding).
    sp_id:
        Restrict shedding to channels hosted by this SP; ``None``
        sheds zone-wide.
    """

    capacity_fraction: float
    sp_id: Optional[str] = None
    cells_admitted: int = field(default=0, init=False)
    cells_deferred: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.capacity_fraction <= 1.0:
            raise ValueError("capacity_fraction must be in [0, 1]")

    def applies_to(self, sp_id: str) -> bool:
        return self.sp_id is None or self.sp_id == sp_id

    def channel_budget(self, n_members: int) -> int:
        """Payload cells admitted on one channel this round."""
        if n_members < 0:
            raise ValueError("membership cannot be negative")
        return min(n_members, int(n_members * self.capacity_fraction))

    def admit(self) -> None:
        self.cells_admitted += 1

    def defer(self) -> None:
        self.cells_deferred += 1

    @property
    def engaged(self) -> bool:
        """Did shedding actually defer anything yet?"""
        return self.cells_deferred > 0

"""Call lifecycle management at the mix and client (§3.6.2–3.6.3).

Ties together the pieces the paper describes separately:

* the caller's **signaling bit** in chaff manifests (outgoing calls),
* the mix's **dynamic channel allocation** (KVV RANKING) among the k
  channels the caller/callee attaches to,
* the downstream **GRANT** (to a signaling caller) and **INCOMING**
  announcement (to a ringing callee), sealed so only the addressee can
  read them,
* per-round downstream packet production: VOIP cells on busy channels,
  pending announcements, chaff everywhere else,
* call teardown, freeing channels for RANKING to reuse.

:class:`MixCallManager` is the mix-side controller;
:class:`ClientCallAgent` is the client-side state machine that trial-
decrypts every downstream packet (as all clients must) and tracks
idle → signaling → in-call transitions.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Collection, Deque, Dict, List, Optional, \
    Set, Tuple

from repro.core.allocation import ChannelAssignment, RankingMatcher
from repro.core.client import HerdClient
from repro.core.mix import Mix
from repro.core.signaling import (
    ChannelGrant,
    IncomingCallAnnouncement,
    KIND_GRANT,
    KIND_INCOMING,
    KIND_VOIP,
    make_downstream_chaff,
    make_downstream_packet,
    open_downstream_packet,
)



@dataclass
class ActiveCall:
    """Mix-side record of one call on one channel."""

    call_id: int
    numeric_id: int
    channel_id: int
    outgoing: bool
    #: Downstream cells waiting to be sent to this call's client.
    downstream: Deque[bytes] = field(default_factory=deque)
    #: Channels this call vacated through mid-call failovers.
    failed_over_from: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class FailoverRecord:
    """One call leg's mid-call re-allocation after its channel's SP
    failed or was blacklisted.  ``new_channel`` is None when no
    surviving channel was free and the leg was dropped."""

    numeric_id: int
    call_id: int
    old_channel: int
    new_channel: Optional[int]

    @property
    def survived(self) -> bool:
        return self.new_channel is not None


class MixCallManager:
    """Allocates calls to channels and produces downstream rounds."""

    def __init__(self, mix: Mix, rng: Optional[random.Random] = None):
        if not mix.channels:
            raise ValueError("mix has no channels configured")
        self.mix = mix
        self.rng = rng or random.Random(0)
        #: Call ids are allocated per manager, not per process: a
        #: module-global counter would leak across simulations, making
        #: the GRANT payloads of a second identically-seeded run in
        #: the same interpreter differ from the first's.
        self._call_ids = itertools.count(1)
        self._assignment = ChannelAssignment(len(mix.channels))
        self.matcher = RankingMatcher(self._assignment, self.rng)
        #: numeric id → (channel → slot)
        self._slots: Dict[int, Dict[int, int]] = {}
        self._client_name: Dict[int, str] = {}
        self.calls: Dict[int, ActiveCall] = {}   # numeric id → call
        self._pending_grant: Dict[int, ActiveCall] = {}
        self._pending_announce: Dict[int, ActiveCall] = {}
        self.calls_blocked = 0
        #: Channels of failed/blacklisted SPs: never allocated, never
        #: produced downstream (§3.6.4).
        self.disabled_channels: Set[int] = set()
        self.failovers: List[FailoverRecord] = []
        #: Optional observability hook (see :class:`repro.obs
        #: .instrument.CallManagerHook`): call lifecycle counters and
        #: the per-round chaff/payload cell census.
        self.obs = None

    # -- registration --------------------------------------------------------

    def register_client(self, client_id: str, numeric_id: int,
                        slots: Dict[int, int]) -> None:
        """Record a joined client's channel attachment (from
        :meth:`Mix.attach_client_to_channels`)."""
        self._assignment.add_client(numeric_id, tuple(slots))
        self._slots[numeric_id] = dict(slots)
        self._client_name[numeric_id] = client_id

    # -- call setup -------------------------------------------------------------

    def _allocate(self, numeric_id: int,
                  outgoing: bool) -> Optional[ActiveCall]:
        channel = self.matcher.try_allocate(numeric_id,
                                            exclude=self.disabled_channels)
        if channel is None:
            self.calls_blocked += 1
            if self.obs is not None:
                self.obs.blocked(numeric_id)
            return None
        slot = self._slots[numeric_id][channel]
        self.mix.channels[channel].start_call(slot)
        call = ActiveCall(call_id=next(self._call_ids),
                          numeric_id=numeric_id, channel_id=channel,
                          outgoing=outgoing)
        self.calls[numeric_id] = call
        if self.obs is not None:
            self.obs.granted(numeric_id, channel, outgoing)
        return call

    def handle_signal(self, numeric_id: int) -> Optional[ActiveCall]:
        """An outgoing-call request arrived via a manifest signaling
        bit.  Allocate a channel; the GRANT goes out with the next
        downstream round (§3.6.2: "The mix will respond on an available
        channel to which the caller attaches")."""
        if numeric_id in self.calls:
            return self.calls[numeric_id]  # duplicate signal: idempotent
        if self.obs is not None:
            self.obs.signaled(numeric_id)
        call = self._allocate(numeric_id, outgoing=True)
        if call is not None:
            self._pending_grant[numeric_id] = call
        return call

    def place_incoming(self, numeric_id: int) -> Optional[ActiveCall]:
        """An inbound call for a client arrived via the rendezvous.
        Allocate a channel and queue the INCOMING announcement."""
        if numeric_id in self.calls:
            self.calls_blocked += 1
            return None  # busy: one call per client
        call = self._allocate(numeric_id, outgoing=False)
        if call is not None:
            self._pending_announce[numeric_id] = call
        return call

    def end_call(self, numeric_id: int) -> None:
        call = self.calls.pop(numeric_id, None)
        if call is None:
            return
        self.matcher.release(numeric_id)
        self.mix.channels[call.channel_id].end_call()
        self._pending_grant.pop(numeric_id, None)
        self._pending_announce.pop(numeric_id, None)
        if self.obs is not None:
            self.obs.ended(numeric_id)

    def fail_channels(self, channel_ids: Collection[int]
                      ) -> List[FailoverRecord]:
        """Mid-call failover: the channels' SP died or was blacklisted
        by the :class:`~repro.core.blacklist.SPMonitor` (§3.6.4).

        The channels are disabled for all future allocation and
        downstream production.  Every active call on one of them is
        re-allocated to a surviving free channel among its client's k
        attachments; a re-GRANT is queued so the client learns its new
        channel with the next downstream round and the call resumes.
        Legs with no surviving free channel are dropped (the caller is
        expected to tear down the peer leg).
        """
        dead = set(channel_ids)
        self.disabled_channels.update(dead)
        records: List[FailoverRecord] = []
        for numeric_id, call in list(self.calls.items()):
            if call.channel_id not in dead:
                continue
            old_channel = call.channel_id
            self.matcher.release(numeric_id)
            self.mix.channels[old_channel].end_call()
            self._pending_grant.pop(numeric_id, None)
            self._pending_announce.pop(numeric_id, None)
            new_channel = self.matcher.try_allocate(
                numeric_id, exclude=self.disabled_channels)
            if new_channel is None:
                del self.calls[numeric_id]
                record = FailoverRecord(numeric_id, call.call_id,
                                        old_channel, None)
            else:
                slot = self._slots[numeric_id][new_channel]
                self.mix.channels[new_channel].start_call(slot)
                call.channel_id = new_channel
                call.failed_over_from.append(old_channel)
                self._pending_grant[numeric_id] = call
                record = FailoverRecord(numeric_id, call.call_id,
                                        old_channel, new_channel)
            records.append(record)
            self.failovers.append(record)
            if self.obs is not None:
                self.obs.failover(record)
        return records

    def enqueue_voice(self, numeric_id: int, cell: bytes) -> None:
        """Queue a downstream voice cell for a client's active call."""
        call = self.calls.get(numeric_id)
        if call is None:
            raise KeyError(f"client {numeric_id} has no active call")
        call.downstream.append(cell)

    # -- downstream round production -------------------------------------------

    def downstream_round(self, round_index: int
                         ) -> Dict[int, bytes]:
        """One packet per channel for this round (Fig. 2a).

        Priority per busy channel: pending GRANT/INCOMING first, then a
        queued voice cell, then addressed chaff (a VOIP packet with an
        empty payload keeps the crypto path identical).  Idle channels
        carry random chaff.
        """
        out: Dict[int, bytes] = {}
        n_control = n_payload = n_chaff = 0
        for numeric_id, call in list(self._pending_grant.items()):
            key = self.mix.client_keys[self._client_name[numeric_id]]
            out[call.channel_id] = make_downstream_packet(
                key, call.channel_id, round_index, KIND_GRANT,
                ChannelGrant(call.channel_id, call.call_id).encode())
            del self._pending_grant[numeric_id]
            n_control += 1
        for numeric_id, call in list(self._pending_announce.items()):
            key = self.mix.client_keys[self._client_name[numeric_id]]
            out[call.channel_id] = make_downstream_packet(
                key, call.channel_id, round_index, KIND_INCOMING,
                IncomingCallAnnouncement(call.call_id).encode())
            del self._pending_announce[numeric_id]
            n_control += 1
        for call in self.calls.values():
            if call.channel_id in out:
                continue
            key = self.mix.client_keys[self._client_name[call.numeric_id]]
            cell = call.downstream.popleft() if call.downstream else b""
            out[call.channel_id] = make_downstream_packet(
                key, call.channel_id, round_index, KIND_VOIP, cell)
            # An empty VOIP cell is addressed chaff: wire-identical to
            # payload, which is exactly the paper's unobservability
            # argument — only the mix-side census can tell them apart.
            if cell:
                n_payload += 1
            else:
                n_chaff += 1
        for channel_id in self.mix.channels:
            if channel_id not in out and \
                    channel_id not in self.disabled_channels:
                out[channel_id] = make_downstream_chaff(self.rng)
                n_chaff += 1
        if self.obs is not None:
            busy = sum(1 for c in self.calls.values()
                       if c.channel_id not in self.disabled_channels)
            enabled = len(self.mix.channels) - len(
                self.disabled_channels & set(self.mix.channels))
            self.obs.downstream_round(round_index, n_payload, n_chaff,
                                      n_control, busy, enabled)
        return out

    # -- round ingestion ------------------------------------------------------------

    def process_upstream(self, channel_id: int, xor_packet: bytes,
                         manifests: List[Tuple[int, int, bool]]
                         ) -> Tuple[Optional[int], bytes]:
        """Decode one upstream round and act on its signals.  Returns
        (active numeric id, payload) for any recovered voice cell."""
        active, payload, signalers = self.mix.decode_channel_round(
            channel_id, xor_packet, manifests)
        for numeric_id in signalers:
            self.handle_signal(numeric_id)
        return active, payload

    def process_round(self, round_index: int,
                      upstream: List[Tuple[int, bytes,
                                           List[Tuple[int, int, bool]]]],
                      route: Optional[Callable[[int, bytes],
                                               None]] = None,
                      pre_downstream: Optional[Callable[[], None]]
                      = None) -> Dict[int, bytes]:
        """Round-synchronous batch entry point: ingest every channel's
        upstream round, route recovered voice, and produce the whole
        downstream round in one call.

        ``upstream`` is a list of (channel_id, xor_packet,
        manifest_entries) triples; they are ingested in the given
        order (callers pass sorted channel order), each recovered
        voice cell handed to ``route(numeric_id, cell)`` immediately —
        exactly the interleaving a per-channel caller produces, so
        allocation rng draws, GRANT queueing, and the downstream cell
        census are identical to the per-channel path (DESIGN.md §9).
        ``pre_downstream`` runs between ingestion and downstream
        production (the zone rings pending callees there).
        """
        for channel_id, xor_packet, entries in upstream:
            active, payload = self.process_upstream(channel_id,
                                                    xor_packet, entries)
            if active is not None and payload and route is not None:
                route(active, payload)
        if pre_downstream is not None:
            pre_downstream()
        return self.downstream_round(round_index)


class CallState(Enum):
    IDLE = "idle"
    SIGNALING = "signaling"
    IN_CALL = "in_call"
    RINGING = "ringing"


@dataclass
class ClientCallAgent:
    """Client-side call state machine over SP channels."""

    client: HerdClient
    state: CallState = CallState.IDLE
    active_channel: Optional[int] = None
    call_id: Optional[int] = None
    received_cells: List[bytes] = field(default_factory=list)

    def start_outgoing(self) -> None:
        """Begin signaling an outgoing call (§3.6.2: the signal bit
        rides the chaff manifests — the caller does not know which, if
        any, channel is available)."""
        if self.state is not CallState.IDLE:
            raise RuntimeError(f"cannot start a call while {self.state}")
        self.client.request_outgoing_call()
        self.state = CallState.SIGNALING

    def hang_up(self) -> None:
        self.client.clear_signal()
        self.state = CallState.IDLE
        self.active_channel = None
        self.call_id = None

    def process_downstream(self, channel_id: int, round_index: int,
                           packet: bytes) -> Optional[str]:
        """Trial-decrypt one downstream packet; returns an event name
        ("granted", "ringing", "voice") or None for chaff."""
        opened = open_downstream_packet(self.client.session_key,
                                        channel_id, round_index, packet)
        if opened is None:
            return None
        kind, payload = opened
        if kind == KIND_GRANT:
            grant = ChannelGrant.decode(payload)
            self.client.clear_signal()
            self.state = CallState.IN_CALL
            self.active_channel = grant.channel_id
            self.call_id = grant.call_id
            return "granted"
        if kind == KIND_INCOMING:
            announcement = IncomingCallAnnouncement.decode(payload)
            self.state = CallState.IN_CALL  # auto-accept, as in §4.3.2
            self.active_channel = channel_id
            self.call_id = announcement.call_id
            return "ringing"
        if kind == KIND_VOIP:
            if payload:
                self.received_cells.append(payload)
            return "voice"
        return None

    def upstream_payload_for(self, channel_id: int,
                             cell: Optional[bytes]) -> Optional[bytes]:
        """The payload to carry on one channel this round: the voice
        cell if this is the call's channel, chaff otherwise."""
        if self.state is CallState.IN_CALL and \
                channel_id == self.active_channel:
            return cell
        return None

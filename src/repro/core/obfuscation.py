"""Censorship circumvention via bridge SPs and cover traffic.

The paper flags this as future work (§3.1): "To circumvent censorship,
Herd could rely on SPs with unpublished IP addresses (like Tor bridges)
and obfuscate client traffic.  Applying obfuscation mechanisms like
Tor's obfsproxy to Herd is the subject of future work.  A key challenge
is that appropriate cover traffic must sustain a minimum rate of one
VoIP call at all times to provide obfuscation."

This module implements that design:

* :class:`BridgeDirectory` — unpublished bridge SPs handed out one at a
  time through rate-limited, token-authenticated requests (so a censor
  enumerating bridges burns tokens and only ever learns a few).
* :class:`ObfuscatedChannel` — an obfsproxy-style wrapper: packets are
  re-encrypted with a per-bridge key (so no Herd framing survives on
  the wire) and the *size* is morphed to a cover profile while the
  send *clock* stays at the chaff rate — satisfying the paper's
  minimum-rate constraint by construction.
* :class:`CoverProfile` — size distributions mimicking innocuous UDP
  traffic (e.g. an online-game or QUIC-like profile).
"""

from __future__ import annotations

import hashlib
import hmac
import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.kdf import hkdf_sha256


@dataclass(frozen=True)
class Bridge:
    """An SP with an unpublished address."""

    bridge_id: str
    address: str
    secret: bytes  # per-bridge obfuscation key seed


class BridgeDirectory:
    """Distributes bridges against single-use invite tokens.

    Tokens are minted by the operator (e.g. handed to trusted community
    members out of band); each token reveals exactly one bridge, and a
    bridge is never handed to more than ``max_users_per_bridge``
    distinct tokens, bounding the damage of a censor's infiltration.
    """

    def __init__(self, max_users_per_bridge: int = 8, rng=None):
        if max_users_per_bridge < 1:
            raise ValueError("need at least one user per bridge")
        self._rng = rng or random.Random(0)
        self._bridges: List[Bridge] = []
        self._assignments: Dict[str, int] = {}  # bridge_id -> users
        self._tokens: Set[bytes] = set()
        self._redeemed: Dict[bytes, Bridge] = {}
        self.max_users_per_bridge = max_users_per_bridge

    def register_bridge(self, bridge_id: str, address: str) -> Bridge:
        secret = self._rng.getrandbits(256).to_bytes(32, "little")
        bridge = Bridge(bridge_id, address, secret)
        self._bridges.append(bridge)
        self._assignments[bridge_id] = 0
        return bridge

    def mint_token(self) -> bytes:
        token = self._rng.getrandbits(128).to_bytes(16, "little")
        self._tokens.add(token)
        return token

    def redeem(self, token: bytes) -> Bridge:
        """Exchange a token for a bridge.  Replaying a token returns
        the same bridge (no amplification); unknown tokens fail."""
        if token in self._redeemed:
            return self._redeemed[token]
        if token not in self._tokens:
            raise PermissionError("invalid bridge token")
        candidates = [b for b in self._bridges
                      if self._assignments[b.bridge_id]
                      < self.max_users_per_bridge]
        if not candidates:
            raise RuntimeError("no bridge capacity available")
        bridge = min(candidates,
                     key=lambda b: self._assignments[b.bridge_id])
        self._assignments[bridge.bridge_id] += 1
        self._tokens.discard(token)
        self._redeemed[token] = bridge
        return bridge

    def exposure(self, burned_tokens: int) -> int:
        """Upper bound on distinct bridges a censor learns by burning
        ``burned_tokens`` tokens."""
        if burned_tokens < 0:
            raise ValueError("token count cannot be negative")
        return min(burned_tokens, len(self._bridges))


@dataclass(frozen=True)
class CoverProfile:
    """A wire-size profile to imitate.

    ``sizes`` are candidate datagram payload sizes (must all be at
    least the Herd packet size plus the obfuscation header, so morphing
    only ever pads).
    """

    name: str
    sizes: Tuple[int, ...]

    def __post_init__(self):
        if not self.sizes:
            raise ValueError("profile needs at least one size")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")


#: A generic "game/RTC-like" UDP profile: a few hundred bytes, varied.
GAME_PROFILE = CoverProfile("game-udp", (340, 372, 420, 480, 512))
#: A QUIC-like profile: mostly full-MTU datagrams.
QUIC_PROFILE = CoverProfile("quic", (1200, 1252, 1350))

_LEN = struct.Struct("<H")


class ObfuscatedChannel:
    """Obfsproxy-style wrapping of one client↔bridge link.

    ``wrap`` re-encrypts a Herd packet under the bridge key and pads to
    a size drawn (deterministically, keyed) from the cover profile, so
    the wire shows neither Herd framing nor Herd's fixed packet size.
    ``unwrap`` inverts it.  Because the caller still invokes ``wrap``
    once per chaff tick, the cover traffic sustains the one-call
    minimum rate the paper requires.
    """

    def __init__(self, bridge: Bridge, profile: CoverProfile
                 = GAME_PROFILE):
        self.bridge = bridge
        self.profile = profile
        self._key = hkdf_sha256(bridge.secret, info=b"herd-obfs-v1")
        self._send_seq = 0
        self.packets_wrapped = 0

    def _nonce(self, seq: int) -> bytes:
        return b"obfs" + struct.pack("<Q", seq)

    _TAG_LEN = 16

    def _size_for(self, seq: int, payload_len: int) -> int:
        digest = hmac.new(self._key, b"size%d" % seq,
                          hashlib.sha256).digest()
        candidates = [s for s in self.profile.sizes
                      if s >= payload_len + _LEN.size + self._TAG_LEN]
        if not candidates:
            raise ValueError(
                f"packet ({payload_len} B) exceeds every size of "
                f"profile {self.profile.name!r}")
        return candidates[digest[0] % len(candidates)]

    def _tag(self, seq: int, ciphertext: bytes) -> bytes:
        return hmac.new(self._key,
                        b"tag" + struct.pack("<Q", seq) + ciphertext,
                        hashlib.sha256).digest()[:self._TAG_LEN]

    def wrap(self, packet: bytes) -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        target = self._size_for(seq, len(packet))
        body = _LEN.pack(len(packet)) + packet
        body = body.ljust(target - self._TAG_LEN, b"\x00")
        ciphertext = chacha20_encrypt(self._key, self._nonce(seq), body)
        out = (struct.pack("<Q", seq) + ciphertext
               + self._tag(seq, ciphertext))
        self.packets_wrapped += 1
        return out

    def unwrap(self, datagram: bytes) -> bytes:
        if len(datagram) < 8 + _LEN.size + self._TAG_LEN:
            raise ValueError("obfuscated datagram too short")
        (seq,) = struct.unpack("<Q", datagram[:8])
        ciphertext = datagram[8:-self._TAG_LEN]
        tag = datagram[-self._TAG_LEN:]
        if not hmac.compare_digest(tag, self._tag(seq, ciphertext)):
            raise ValueError("obfuscated datagram failed authentication")
        body = chacha20_encrypt(self._key, self._nonce(seq), ciphertext)
        (length,) = _LEN.unpack(body[:_LEN.size])
        if length > len(body) - _LEN.size:
            raise ValueError("obfuscated length field corrupt")
        return body[_LEN.size:_LEN.size + length]

    def wire_sizes(self, n: int, packet_len: int) -> List[int]:
        """Preview the wire sizes of the next n packets (for tests and
        the distinguishability analysis)."""
        return [8 + self._size_for(self._send_seq + i, packet_len)
                for i in range(n)]

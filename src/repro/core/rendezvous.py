"""Rendezvous and end-to-end calls (§3.3).

"A call is established using the rendezvous mechanism as follows.
First, a hidden callee builds a circuit comprising a mix and rendezvous
mix in her trust zone and uses it to publish her rendezvous mix in the
zone directory.  The caller follows the same procedure [...] To make a
call, a caller looks up the callee's rendezvous mix in the directory of
the zone contained in the callee's certificate and initiates a
handshake with the hidden callee.  If the call is accepted, the two
clients communicate via the rendezvous mixes, hence hiding the mixes to
which they attach from each other, thus maintaining zone anonymity."

:class:`RendezvousService` drives registration and call establishment
against live :class:`~repro.core.mix.Mix` objects;
:class:`CallSession` then pumps end-to-end encrypted voice cells over
the two concatenated circuits, hop by hop, exactly as the deployed
system would (every layer peel/add really happens).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.circuit import Circuit, CircuitBuilder
from repro.core.client import HerdClient
from repro.core.directory import ZoneDirectory
from repro.core.mix import Mix, RelayAction
from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.kdf import derive_keys
from repro.crypto.onion import unwrap_backward, wrap_onion
from repro.crypto.pki import Certificate
from repro.crypto.x25519 import X25519PrivateKey


class CallError(Exception):
    """Raised when call establishment or relaying fails."""


@dataclass
class CallEndpoint:
    """One side of an established call."""

    client: HerdClient
    circuit: Circuit
    send_seq: int = 0
    recv_seq: int = 0


class RendezvousService:
    """Zone-anonymous call setup over a set of zones.

    ``directories`` maps zone id → :class:`ZoneDirectory`; ``mixes``
    maps mix id → :class:`Mix`.  Clients must already be joined and
    hold standing circuits.
    """

    def __init__(self, directories: Dict[str, ZoneDirectory],
                 mixes: Dict[str, Mix],
                 rng: Optional[random.Random] = None):
        self.directories = directories
        self.mixes = mixes
        self.rng = rng or random.Random(0)

    def circuit_builder(self) -> CircuitBuilder:
        return CircuitBuilder(lambda mix_id: self.mixes[mix_id],
                              rng=self.rng)

    def build_standing_circuit(self, client: HerdClient,
                               zone_id: Optional[str] = None) -> Circuit:
        """Build the client's entry+rendezvous circuit.  ``zone_id``
        defaults to the client's own zone; passing a different zone
        implements the "alternative, pre-established circuit to a
        different zone" of §3.3."""
        zone_id = zone_id or client.zone_id
        directory = self.directories[zone_id]
        if client.mix_id is None:
            raise CallError("client must join before building circuits")
        if zone_id == client.zone_id:
            entry = client.mix_id
        else:
            entry = directory.pick_mix()
        rendezvous = directory.pick_mix()
        path = [entry] if rendezvous == entry else [entry, rendezvous]
        return client.build_circuit(self.circuit_builder(), path)

    def register_callee(self, client: HerdClient) -> bytes:
        """Publish the client's rendezvous mix so callers can find it;
        returns the rendezvous cookie (the client's public key, per
        §3.3: "client's public key and rendezvous mix IP address")."""
        if client.circuit is None:
            raise CallError("callee needs a standing circuit first")
        cookie = client.identity.public_bytes
        rdv_mix = self.mixes[client.circuit.rendezvous_mix]
        rdv_mix.register_rendezvous_cookie(cookie,
                                           client.circuit.circuit_id)
        directory = self.directories[client.certificate.zone_id]
        directory.publish_rendezvous(cookie, rdv_mix.mix_id)
        return cookie

    def establish_call(self, caller: HerdClient,
                       callee_certificate: Certificate,
                       callee: HerdClient) -> "CallSession":
        """Set up a call: directory lookup, splices at both rendezvous
        mixes, end-to-end key agreement.

        ``callee`` is needed because the callee's half of the key
        agreement runs on its device; everything the *network* learns is
        limited to what the splice state contains (tests assert this).
        """
        if caller.circuit is None or callee.circuit is None:
            raise CallError("both parties need standing circuits")
        callee_zone = callee_certificate.zone_id
        directory = self.directories.get(callee_zone)
        if directory is None:
            raise CallError(f"unknown zone {callee_zone!r} in callee "
                            "certificate")
        cookie = callee_certificate.identity_public
        record = directory.lookup_rendezvous(cookie)
        if record is None:
            raise CallError("callee has no published rendezvous")

        rdv_c = self.mixes[caller.circuit.rendezvous_mix]
        rdv_e = self.mixes[record.rendezvous_mix]
        callee_circuit_id = rdv_e.lookup_cookie(cookie)
        if callee_circuit_id != callee.circuit.circuit_id:
            raise CallError("rendezvous cookie does not match the "
                            "callee's standing circuit")
        # Splice both directions.
        rdv_c.splice(caller.circuit.circuit_id, rdv_e.mix_id,
                     callee_circuit_id)
        rdv_e.splice(callee_circuit_id, rdv_c.mix_id,
                     caller.circuit.circuit_id)

        session = CallSession(
            caller=CallEndpoint(caller, caller.circuit),
            callee=CallEndpoint(callee, callee.circuit),
            mixes=self.mixes,
        )
        session.negotiate_keys(self.rng)
        return session


class CallSession:
    """An established, end-to-end encrypted call.

    Voice frames are encrypted with the negotiated call key, wrapped in
    the sender's onion circuit, relayed through every mix (layer by
    layer), injected backward down the receiver's circuit, and
    decrypted by the receiver — the full data path of Fig. 1.
    """

    def __init__(self, caller: CallEndpoint, callee: CallEndpoint,
                 mixes: Dict[str, Mix]):
        self.caller = caller
        self.callee = callee
        self.mixes = mixes
        self._caller_aead: Optional[ChaCha20Poly1305] = None
        self._callee_aead: Optional[ChaCha20Poly1305] = None
        self.established = False

    # -- raw relay pipeline ---------------------------------------------------

    def _relay(self, sender: CallEndpoint, receiver: CallEndpoint,
               payload: bytes) -> bytes:
        """Push one payload through the concatenated circuits; returns
        what the receiving client's software decrypts off its link."""
        seq = sender.send_seq
        sender.send_seq += 1
        cell = wrap_onion(sender.circuit.keys, payload, seq)
        circuit_id = sender.circuit.circuit_id
        # Forward through the sender's mixes.
        action: Optional[RelayAction] = None
        for mix_id in sender.circuit.path:
            action = self.mixes[mix_id].forward_cell(circuit_id, cell, seq)
            if action.kind == "to_peer_mix":
                break
            if action.kind != "forward":
                raise CallError(f"unexpected relay action {action.kind}")
            cell = action.data
        if action is None or action.kind != "to_peer_mix":
            raise CallError("circuit is not spliced to a peer")
        # Cross to the peer rendezvous mix, then backward to the client.
        peer_mix = self.mixes[action.peer]
        back = peer_mix.inject_backward(action.peer_circuit, action.data,
                                        seq)
        path = receiver.circuit.path
        idx = path.index(peer_mix.mix_id)
        for mix_id in reversed(path[:idx]):
            if back.kind != "backward":
                raise CallError(f"unexpected relay action {back.kind}")
            back = self.mixes[mix_id].backward_cell(
                receiver.circuit.circuit_id, back.data, seq)
        expected_recipient = receiver.client.client_id
        if back.peer != expected_recipient:
            raise CallError(
                f"cell delivered to {back.peer}, expected "
                f"{expected_recipient}")
        out = unwrap_backward(receiver.circuit.keys, back.data, seq)
        receiver.recv_seq = seq + 1
        return out

    # -- key agreement ----------------------------------------------------------

    def negotiate_keys(self, rng: Optional[random.Random] = None) -> None:
        """End-to-end X25519 over the concatenated circuits: the caller
        sends its ephemeral forward; the callee answers backward; both
        derive one AEAD key per direction (§3.2: "Herd VoIP content is
        encrypted end-to-end between the caller and callee using a
        symmetric key negotiated over two circuits concatenated at
        rendezvous mixes")."""
        caller_eph = X25519PrivateKey.generate(rng)
        callee_eph = X25519PrivateKey.generate(rng)
        # Caller → callee: the INVITE with the caller's ephemeral.
        invite = b"HERD-INVITE" + caller_eph.public_bytes
        received = self._relay(self.caller, self.callee, invite)
        if received[:11] != b"HERD-INVITE":
            raise CallError("callee received a malformed INVITE")
        caller_pub_at_callee = received[11:43]
        # Callee → caller: the ACCEPT with the callee's ephemeral.
        accept = b"HERD-ACCEPT" + callee_eph.public_bytes
        received = self._relay(self.callee, self.caller, accept)
        if received[:11] != b"HERD-ACCEPT":
            raise CallError("caller received a malformed ACCEPT")
        callee_pub_at_caller = received[11:43]

        caller_keys = derive_keys(
            caller_eph.exchange(callee_pub_at_caller),
            ("caller_to_callee", "callee_to_caller"),
            context=caller_eph.public_bytes + callee_pub_at_caller)
        callee_keys = derive_keys(
            callee_eph.exchange(caller_pub_at_callee),
            ("caller_to_callee", "callee_to_caller"),
            context=caller_pub_at_callee + callee_eph.public_bytes)
        if caller_keys != callee_keys:
            raise CallError("end-to-end key agreement failed")
        self._caller_aead = ChaCha20Poly1305(
            caller_keys["caller_to_callee"])
        self._callee_aead = ChaCha20Poly1305(
            caller_keys["callee_to_caller"])
        self.established = True

    # -- voice ---------------------------------------------------------------------

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return b"e2e\x00" + struct.pack("<Q", seq)

    def send_voice(self, direction: str, frame: bytes) -> bytes:
        """Send one voice frame ("caller_to_callee" or
        "callee_to_caller"); returns the frame as decrypted by the far
        end."""
        if not self.established:
            raise CallError("call keys not negotiated yet")
        if direction == "caller_to_callee":
            sender, receiver = self.caller, self.callee
            aead = self._caller_aead
        elif direction == "callee_to_caller":
            sender, receiver = self.callee, self.caller
            aead = self._callee_aead
        else:
            raise ValueError(f"unknown direction {direction!r}")
        seq = sender.send_seq  # _relay will consume this sequence
        ciphertext = aead.encrypt(self._nonce(seq), frame)
        delivered = self._relay(sender, receiver, ciphertext)
        return aead.decrypt(self._nonce(seq), delivered)

    # -- path metrics --------------------------------------------------------------

    def link_hops(self) -> int:
        """Number of links a frame crosses caller→callee (the paper's
        "a complete circuit has five hops" for 2-mix circuits)."""
        crossover = 0 if (self.caller.circuit.rendezvous_mix
                          == self.callee.circuit.rendezvous_mix) else 1
        return (len(self.caller.circuit) + len(self.callee.circuit)
                + crossover)

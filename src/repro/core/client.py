"""Herd clients (§3).

A client

* holds identity/short-term keys and a zone certificate (§3.2, §3.3),
* joins a zone (§3.5), establishing a symmetric session key ``s`` with
  its mix that encrypts everything it ever sends,
* keeps constant-rate chaffed links up at all times — "clients connect
  to Herd continuously, regardless of call activity" — emitting exactly
  one fixed-size packet per codec frame per link (§3.4.1),
* builds circuits (entry mix + rendezvous mix) and publishes its
  rendezvous record to receive calls anonymously (§3.3),
* participates in SP channels: manifests on every upstream packet,
  signal bit to request outgoing calls, trial-decryption of every
  downstream packet (§3.6.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.chaffing import ConstantRateChaffer
from repro.core.channel import ChannelManifest, encode_manifest
from repro.core.circuit import Circuit, CircuitBuilder
from repro.core.network_coding import (
    make_chaff_packet,
    make_payload_packet,
)
from repro.crypto.kdf import hkdf_sha256
from repro.crypto.keys import IdentityKeyPair, SessionKey, ShortTermKeyPair
from repro.crypto.pki import Certificate
from repro.crypto.x25519 import X25519PrivateKey
from repro.voip.codec import Codec, G711


def derive_client_mix_key(shared: bytes, client_eph_pub: bytes,
                          mix_public: bytes) -> SessionKey:
    """The session key ``s`` both sides derive at join (§3.5)."""
    key = hkdf_sha256(shared, info=b"herd-join" + client_eph_pub
                      + mix_public)
    return SessionKey(key)


@dataclass
class ChannelAttachment:
    """The client's view of one channel it attaches to (at an SP)."""

    sp_id: str
    channel_id: int
    slot: int
    sequence: int = 0


class HerdClient:
    """One Herd client."""

    def __init__(self, client_id: str, zone_id: str,
                 rng: Optional[random.Random] = None,
                 codec: Codec = G711, k: int = 3):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.client_id = client_id
        self.zone_id = zone_id
        self.rng = rng or random.Random(0)
        self.codec = codec
        self.k = k
        self.identity = IdentityKeyPair.generate(self.rng)
        self.short_term = ShortTermKeyPair.generate(self.rng)
        self.certificate: Optional[Certificate] = None
        #: Numeric id assigned by the mix at adoption (channel slots).
        self.numeric_id: Optional[int] = None
        self.mix_id: Optional[str] = None
        self.session_key: Optional[SessionKey] = None
        self.chaffer = ConstantRateChaffer(codec)
        self.attachments: List[ChannelAttachment] = []
        self.circuit: Optional[Circuit] = None
        self.in_call = False
        self.signal_pending = False

    # -- join ---------------------------------------------------------------

    def begin_join(self) -> Tuple[bytes, X25519PrivateKey]:
        """Start key establishment with the mix: returns the ephemeral
        public key to send over the mix's DTLS link."""
        eph = X25519PrivateKey.generate(self.rng)
        return eph.public_bytes, eph

    def finish_join(self, eph: X25519PrivateKey, mix_id: str,
                    mix_short_term_public: bytes, numeric_id: int,
                    certificate: Certificate) -> None:
        shared = eph.exchange(mix_short_term_public)
        self.session_key = derive_client_mix_key(
            shared, eph.public_bytes, mix_short_term_public)
        self.mix_id = mix_id
        self.numeric_id = numeric_id
        self.certificate = certificate

    def attach(self, sp_id: str, channel_id: int, slot: int) -> None:
        if len(self.attachments) >= self.k:
            raise RuntimeError(f"client already attached to {self.k} "
                               "channels")
        self.attachments.append(ChannelAttachment(sp_id, channel_id, slot))

    @property
    def joined(self) -> bool:
        return self.session_key is not None

    def detach_channels(self, channel_ids) -> List[ChannelAttachment]:
        """Drop the attachments on the given channels (their SP died or
        was blacklisted, §3.6.4) while staying joined at the mix; the
        surviving attachments keep carrying chaff and any migrated
        call.  Returns the removed attachments."""
        dropped = [a for a in self.attachments
                   if a.channel_id in channel_ids]
        self.attachments = [a for a in self.attachments
                            if a.channel_id not in channel_ids]
        return dropped

    def leave(self) -> None:
        """Drop all session state so the client can re-join (e.g. after
        a mix or SP failure, §3.5).  The identity keys and certificate
        survive — only the attachment is reset."""
        self.session_key = None
        self.mix_id = None
        self.numeric_id = None
        self.attachments.clear()
        self.circuit = None
        self.in_call = False
        self.signal_pending = False

    # -- upstream packet generation (one per channel per round) -------------

    def upstream_packet(self, attachment: ChannelAttachment,
                        payload: Optional[bytes] = None
                        ) -> Tuple[bytes, bytes]:
        """The (packet, encrypted manifest) pair for one round on one
        channel.  ``payload`` (an onion cell) is carried only on the
        channel granted to the active call; everywhere else chaff goes
        out at the same size and rate (§3.4.1)."""
        if not self.joined:
            raise RuntimeError("client has not joined")
        seq = attachment.sequence
        if payload is None:
            packet = make_chaff_packet(self.session_key, seq)
        else:
            packet = make_payload_packet(self.session_key, seq, payload)
        manifest = ChannelManifest(
            client_id=attachment.slot,
            sequence=seq,
            signal=self.signal_pending,
        )
        encoded = encode_manifest(manifest, self.session_key,
                                  slot=attachment.slot)
        attachment.sequence += 1
        return packet, encoded

    def request_outgoing_call(self) -> None:
        """Set the signaling bit on subsequent chaff manifests
        (§3.6.2)."""
        self.signal_pending = True

    def clear_signal(self) -> None:
        self.signal_pending = False

    # -- circuits ------------------------------------------------------------

    def build_circuit(self, builder: CircuitBuilder,
                      path: List[str]) -> Circuit:
        """Build the client's standing circuit (entry mix + rendezvous
        mix, §3.3)."""
        self.circuit = builder.build(path, self.client_id)
        return self.circuit

    @property
    def rendezvous_mix(self) -> str:
        if self.circuit is None:
            raise RuntimeError("no circuit built yet")
        return self.circuit.rendezvous_mix

    # -- chaff clock ----------------------------------------------------------

    def link_rate_bps(self) -> float:
        """Constant client-link bandwidth: k channels × codec rate
        (the paper's 24 KB/s for k=3 with G.711)."""
        return self.k * self.codec.payload_rate_bps

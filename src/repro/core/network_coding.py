"""Upstream XOR network coding and chaff prediction (§3.6.1).

"In the upstream direction, in each round, the SP receives a packet
from each client attached to a channel.  Because at most one client can
be active in each channel, we can use a simple form of network coding.
The SP simply forwards to the mix the XOR of the client packets
received in each of the r channels, of which at most one is a VoIP
packet and the rest are chaff.  Because the ciphertext of the chaff
packets from the idle clients is predictable to the mix (the cleartext
contains a sequence number and the packets include the IVs), the mix
can trivially recover the r payload packets from the r XORs it
receives."

Packet format on client links (fixed :data:`CODED_PACKET_SIZE` bytes,
encrypted with the client↔mix session key ``s`` via ChaCha20 keyed by
the packet sequence number — the "IV" the paper mentions):

    1 byte    type: 0x00 chaff, 0x01 payload
    8 bytes   sequence number
    N bytes   payload (zeros for chaff)

The mix regenerates each idle client's chaff ciphertext bit-for-bit
with :class:`ChaffPredictor` and XORs it out; whatever remains is the
active client's encrypted packet (or nothing, if the channel is idle).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.keys import SessionKey

#: Payload capacity of one coded packet — sized for an onion cell.
CODED_PAYLOAD = 292
_TYPE_CHAFF = 0
_TYPE_PAYLOAD = 1
_HEADER = struct.Struct("<BQ")
CODED_PACKET_SIZE = _HEADER.size + CODED_PAYLOAD

_UP_PREFIX = b"up\x00\x00"


def xor_bytes(*chunks: bytes) -> bytes:
    """XOR any number of equal-length byte strings."""
    if not chunks:
        raise ValueError("need at least one chunk")
    length = len(chunks[0])
    if any(len(c) != length for c in chunks):
        raise ValueError("all chunks must have equal length")
    out = bytearray(chunks[0])
    for chunk in chunks[1:]:
        for i, byte in enumerate(chunk):
            out[i] ^= byte
    return bytes(out)


def _encode_cleartext(kind: int, sequence: int, payload: bytes) -> bytes:
    if len(payload) > CODED_PAYLOAD:
        raise ValueError("payload exceeds coded packet capacity")
    return (_HEADER.pack(kind, sequence)
            + payload.ljust(CODED_PAYLOAD, b"\x00"))


def _keystream_encrypt(key: SessionKey, sequence: int,
                       cleartext: bytes) -> bytes:
    nonce = _UP_PREFIX + struct.pack("<Q", sequence)
    return chacha20_encrypt(key.key, nonce, cleartext)


def make_chaff_packet(key: SessionKey, sequence: int) -> bytes:
    """The encrypted chaff packet an idle client sends at ``sequence``."""
    return _keystream_encrypt(key, sequence,
                              _encode_cleartext(_TYPE_CHAFF, sequence, b""))


def make_payload_packet(key: SessionKey, sequence: int,
                        payload: bytes) -> bytes:
    """The encrypted packet an active client sends carrying ``payload``
    (an onion cell)."""
    return _keystream_encrypt(
        key, sequence, _encode_cleartext(_TYPE_PAYLOAD, sequence, payload))


def decrypt_packet(key: SessionKey, sequence: int,
                   ciphertext: bytes) -> Tuple[bool, bytes]:
    """Decrypt a client packet; returns (is_payload, payload_bytes).

    Raises :class:`ValueError` if the embedded sequence number does not
    match (corruption, or wrong keystream)."""
    if len(ciphertext) != CODED_PACKET_SIZE:
        raise ValueError("coded packet has the wrong size")
    clear = _keystream_encrypt(key, sequence, ciphertext)
    kind, seq = _HEADER.unpack(clear[:_HEADER.size])
    if seq != sequence:
        raise ValueError("packet sequence mismatch after decryption")
    if kind == _TYPE_CHAFF:
        return False, b""
    if kind == _TYPE_PAYLOAD:
        return True, clear[_HEADER.size:]
    raise ValueError(f"unknown packet type {kind}")


class ChaffPredictor:
    """Mix-side oracle for idle clients' chaff ciphertext.

    "The ciphertext of the chaff packets from the idle clients is
    predictable to the mix" — given the shared session key and the
    sequence number from the client's manifest, the ciphertext is
    recomputed exactly.
    """

    def __init__(self, client_keys: Dict[int, SessionKey]):
        self._keys = dict(client_keys)

    def add_client(self, client: int, key: SessionKey) -> None:
        self._keys[client] = key

    def predict(self, client: int, sequence: int) -> bytes:
        key = self._keys.get(client)
        if key is None:
            raise KeyError(f"no session key for client {client}")
        return make_chaff_packet(key, sequence)

    def key_of(self, client: int) -> SessionKey:
        return self._keys[client]


def decode_round(xor_packet: bytes,
                 manifest_entries: Sequence[Tuple[int, int, bool]],
                 predictor: ChaffPredictor,
                 active_client: Optional[int] = None
                 ) -> Tuple[Optional[int], bytes, List[int]]:
    """Mix-side decode of one channel round (Fig. 2b).

    Parameters
    ----------
    xor_packet:
        The XOR the SP forwarded for this channel.
    manifest_entries:
        Decrypted manifests as ``(client, sequence, signal_bit)`` for
        every client whose packet was included in the XOR.
    predictor:
        The chaff oracle holding every client's session key.
    active_client:
        The client currently holding this channel's call, if any.  The
        *mix* allocated the call to the channel (§3.6.3), so this is
        mix-local state, not something inferred from traffic.

    Returns ``(sender, payload, signalers)`` where ``sender``/
    ``payload`` identify the round's at-most-one VoIP packet
    (``None``/b"" if every packet was chaff — including when the active
    client had nothing to send) and ``signalers`` lists clients whose
    manifest had the signaling bit set (outgoing-call requests,
    §3.6.2).

    The mix XORs out the *predicted chaff* of every idle client; the
    residue is the active client's encrypted packet, decrypted with its
    session key.  With no active client the residue must be zero — a
    nonzero residue means a misbehaving SP or client, and the caller is
    expected to trigger the full-packet audit of §3.6.1 ("the mix asks
    the SP to send the full packets from which the packets were
    computed").
    """
    if len(xor_packet) != CODED_PACKET_SIZE:
        raise ValueError("XOR packet has the wrong size")
    signalers = [client for client, _, signal in manifest_entries
                 if signal]
    residue = xor_packet
    active_seq: Optional[int] = None
    for client, seq, _ in manifest_entries:
        if client == active_client:
            active_seq = seq
            continue
        residue = xor_bytes(residue, predictor.predict(client, seq))
    if active_client is None:
        if residue != b"\x00" * CODED_PACKET_SIZE:
            raise ValueError(
                "XOR round residue nonzero with no active client: "
                "misbehaving SP or client (full-packet audit required)")
        return None, b"", signalers
    if active_seq is None:
        raise ValueError("active client missing from round manifests")
    is_payload, payload = decrypt_packet(
        predictor.key_of(active_client), active_seq, residue)
    if not is_payload:
        return None, b"", signalers
    return active_client, payload, signalers

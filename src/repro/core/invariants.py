"""Herd's security invariants I1–I8 (§3.7) as executable checks.

The paper argues informally that eight invariants jointly provide zone
anonymity.  This module turns each into a predicate the test suite (and
benchmark harness) can apply to simulation artefacts:

* I1 — successive-link ciphertexts uncorrelated:
  :func:`ciphertext_uncorrelated`.
* I2/I3 — interior/edge mixes know only adjacent hops:
  :func:`mix_knowledge` extracts everything a mix's circuit table holds
  so tests can assert nothing more is known.
* I4 — circuits include two mixes in each party's zone: checked
  structurally via :func:`circuit_zone_profile`.
* I5 — rendezvous mix uniformly likely: :func:`is_uniform_choice`.
* I6 — link time series uncorrelated with payload:
  :func:`series_identical`.
* I7 — upstream manipulation invisible downstream: exercised by the
  chaffer (rate is clock-driven); :func:`series_identical` applies.
* I8 — SPs blind to activity: :func:`sp_state_is_activity_free`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def byte_agreement(a: bytes, b: bytes) -> float:
    """Fraction of positions where two equal-length strings agree.
    Independent uniform strings agree on ≈ 1/256 of positions."""
    if len(a) != len(b):
        raise ValueError("strings must have equal length")
    if not a:
        return 0.0
    return sum(x == y for x, y in zip(a, b)) / len(a)


def ciphertext_uncorrelated(representations: Sequence[bytes],
                            threshold: float = 0.1) -> bool:
    """I1: no pair of link representations of the same cell agrees on
    more than ``threshold`` of byte positions."""
    for i in range(len(representations)):
        for j in range(i + 1, len(representations)):
            if byte_agreement(representations[i],
                              representations[j]) > threshold:
                return False
    return True


def shannon_entropy(data: bytes) -> float:
    """Byte-level Shannon entropy in bits (max 8.0)."""
    if not data:
        return 0.0
    counts: Dict[int, int] = {}
    for b in data:
        counts[b] = counts.get(b, 0) + 1
    total = len(data)
    return -sum((c / total) * math.log2(c / total)
                for c in counts.values())


def looks_uniform(data: bytes, min_entropy_bits: float = 7.0) -> bool:
    """A necessary condition for ciphertext indistinguishability: high
    byte entropy.  (Real uniformity needs more data than one packet;
    this catches gross failures such as unencrypted chaff.)"""
    return shannon_entropy(data) >= min_entropy_bits


def mix_knowledge(mix, circuit_id: int) -> Dict[str, Optional[str]]:
    """I2/I3: everything a mix's circuit table reveals about a circuit —
    exactly the previous and next hop.  Tests assert the returned dict
    is the *complete* routing knowledge."""
    state = mix.circuit_state(circuit_id)
    return {"prev_hop": state.prev_hop, "next_hop": state.next_hop}


def circuit_zone_profile(circuit, mix_zone: Mapping[str, str]) -> List[str]:
    """I4: the zones of the mixes along a circuit's path."""
    return [mix_zone[m] for m in circuit.path]


def is_uniform_choice(counts: Mapping[object, int],
                      n_options: int,
                      tolerance: float = 0.5) -> bool:
    """I5: observed selection counts are consistent with a uniform
    choice among ``n_options``: every option's frequency lies within
    ``tolerance`` (relative) of 1/n.  Needs enough samples to be
    meaningful."""
    total = sum(counts.values())
    if total == 0 or n_options <= 0:
        raise ValueError("need samples and options")
    expected = total / n_options
    if len(counts) < n_options and total >= 10 * n_options:
        return False  # some option never chosen despite many samples
    return all(abs(c - expected) <= tolerance * expected
               for c in counts.values())


def series_identical(series_a: Mapping[int, int],
                     series_b: Mapping[int, int],
                     bins: Optional[Iterable[int]] = None,
                     tolerance: float = 0.0) -> bool:
    """I6/I7: two observed link time series (bytes per bin) are equal
    bin-for-bin within ``tolerance`` (relative).  Used to show an
    active caller's link is indistinguishable from an idle client's,
    and that upstream tampering leaves downstream rates unchanged."""
    if bins is None:
        bins = set(series_a) | set(series_b)
    for idx in bins:
        a = series_a.get(idx, 0)
        b = series_b.get(idx, 0)
        limit = tolerance * max(a, b)
        if abs(a - b) > limit:
            return False
    return True


_ACTIVITY_FIELDS = ("active", "call", "voip", "payload", "talking")


def sp_state_is_activity_free(sp) -> bool:
    """I8: nothing in an SP's attribute names or values encodes call
    activity.  Structural check: the SP type exposes only membership
    and ciphertext-buffer state (audited here by attribute name)."""
    for name in vars(sp):
        lowered = name.lower()
        if any(marker in lowered for marker in _ACTIVITY_FIELDS):
            return False
    return True

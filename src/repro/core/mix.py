"""Mixes: Herd's trusted relay nodes (§3).

A mix

* holds long-term identity and short-term circuit keys, enrolls with
  its zone directory, and publishes a descriptor (§3.2),
* answers circuit CREATE requests and maintains a circuit table
  (:class:`~repro.core.circuit.RelayCircuitState`),
* relays cells: peels its forward layer / adds its backward layer —
  and, as a *rendezvous* mix, terminates a circuit and hands payload
  across to the peer rendezvous mix (§3.3),
* adopts clients directly or redirects them to superpeers, maintains
  per-client session keys, channel membership, and the chaff predictor
  that decodes upstream XOR rounds (§3.6),
* reports utilization to the zone directory (§3.4.2).

Relay methods return :class:`RelayAction` values instead of touching a
network directly, so the same object runs both under synchronous unit
tests and behind the event-driven deployment simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import RankingMatcher
from repro.core.channel import Channel
from repro.core.circuit import (
    CreateReply,
    CreateRequest,
    RelayCircuitState,
    mix_process_create,
)
from repro.core.directory import ZoneDirectory
from repro.core.network_coding import (
    ChaffPredictor,
    decode_round,
)
from repro.crypto.keys import IdentityKeyPair, SessionKey, ShortTermKeyPair
from repro.crypto.onion import decode_cell, encode_cell, unwrap_layer
from repro.crypto.pki import make_descriptor


@dataclass(frozen=True)
class RelayAction:
    """What the mix wants done with a processed cell.

    ``kind`` ∈ {"forward", "backward", "to_peer_mix", "deliver"}:

    * forward — send ``data`` toward ``peer`` (next hop).
    * backward — send ``data`` toward ``peer`` (previous hop, may be
      the client).
    * to_peer_mix — rendezvous hand-off: ``data`` is raw end-to-end
      payload for circuit ``peer_circuit`` at mix ``peer``.
    * deliver — ``data`` reached this mix as its final destination
      (control traffic).
    """

    kind: str
    peer: Optional[str]
    data: bytes
    peer_circuit: Optional[int] = None


class Mix:
    """One Herd mix."""

    def __init__(self, mix_id: str, directory: ZoneDirectory,
                 rng: Optional[random.Random] = None,
                 address: str = ""):
        self.mix_id = mix_id
        self.directory = directory
        self.zone = directory.zone
        self.rng = rng or random.Random(0)
        self.identity = IdentityKeyPair.generate(self.rng)
        self.short_term = ShortTermKeyPair.generate(self.rng)
        self.zone.add_mix(mix_id)
        self.certificate = directory.enroll(
            mix_id, "mix", self.identity.public_bytes,
            self.short_term.public_bytes)
        directory.publish_descriptor(make_descriptor(
            self.identity, mix_id, self.zone.zone_id,
            self.short_term.public_bytes, address or mix_id))

        self.circuits: Dict[int, RelayCircuitState] = {}
        #: Rendezvous cookies → waiting circuit id (callee side).
        self.rendezvous_cookies: Dict[bytes, int] = {}

        # Client-side state (direct clients and clients behind SPs).
        self.client_keys: Dict[str, SessionKey] = {}
        self.predictor = ChaffPredictor({})
        self.channels: Dict[int, Channel] = {}
        self._client_slots: Dict[Tuple[int, int], str] = {}
        self.matcher: Optional[RankingMatcher] = None
        self.cells_relayed = 0

    # -- circuit plumbing ---------------------------------------------------

    def process_create(self, request: CreateRequest, prev_hop: str,
                       next_hop: Optional[str] = None,
                       role: str = "entry") -> CreateReply:
        """Handle a CREATE: install circuit state, return the reply."""
        if request.circuit_id in self.circuits:
            raise ValueError(f"circuit {request.circuit_id} already "
                             "exists at {self.mix_id}")
        reply, keys = mix_process_create(request, self.rng)
        self.circuits[request.circuit_id] = RelayCircuitState(
            circuit_id=request.circuit_id, hop_keys=keys,
            prev_hop=prev_hop, next_hop=next_hop, role=role)
        return reply

    def circuit_state(self, circuit_id: int) -> RelayCircuitState:
        try:
            return self.circuits[circuit_id]
        except KeyError:
            raise KeyError(f"{self.mix_id} has no circuit {circuit_id}")

    def register_rendezvous_cookie(self, cookie: bytes,
                                   circuit_id: int) -> None:
        """Callee side: bind a cookie to the waiting circuit so a peer
        rendezvous mix can splice calls onto it."""
        self.circuit_state(circuit_id)  # must exist
        self.rendezvous_cookies[cookie] = circuit_id

    def splice(self, circuit_id: int, peer_mix: str,
               peer_circuit: int) -> None:
        """Connect a local rendezvous circuit to a circuit at a peer
        rendezvous mix (call establishment)."""
        state = self.circuit_state(circuit_id)
        if state.role != "rendezvous":
            raise ValueError("only rendezvous circuits can be spliced")
        if state.spliced_circuit is not None and \
                (state.next_hop, state.spliced_circuit) != \
                (peer_mix, peer_circuit):
            raise ValueError(
                f"circuit {circuit_id} already carries a call; one "
                "circuit supports one concurrent call")
        state.next_hop = peer_mix
        state.spliced_circuit = peer_circuit

    def lookup_cookie(self, cookie: bytes) -> int:
        try:
            return self.rendezvous_cookies[cookie]
        except KeyError:
            raise KeyError(f"unknown rendezvous cookie at {self.mix_id}")

    # -- cell relaying ------------------------------------------------------

    def forward_cell(self, circuit_id: int, cell: bytes,
                     sequence: int) -> RelayAction:
        """Peel this mix's forward layer and route the cell."""
        state = self.circuit_state(circuit_id)
        peeled = unwrap_layer(state.hop_keys, cell, sequence,
                              forward=True)
        self.cells_relayed += 1
        if state.role == "rendezvous" and state.spliced_circuit is not None:
            # Terminal hop: verify/strip the cell, hand the raw
            # end-to-end payload to the peer rendezvous mix.
            payload = decode_cell(peeled, state.hop_keys.forward_mac)
            return RelayAction("to_peer_mix", state.next_hop, payload,
                               peer_circuit=state.spliced_circuit)
        if state.next_hop is None:
            payload = decode_cell(peeled, state.hop_keys.forward_mac)
            return RelayAction("deliver", None, payload)
        return RelayAction("forward", state.next_hop, peeled)

    def backward_cell(self, circuit_id: int, cell: bytes,
                      sequence: int) -> RelayAction:
        """Add this mix's backward layer; route toward the client."""
        state = self.circuit_state(circuit_id)
        layered = unwrap_layer(state.hop_keys, cell, sequence,
                               forward=False)
        self.cells_relayed += 1
        return RelayAction("backward", state.prev_hop, layered)

    def inject_backward(self, circuit_id: int, payload: bytes,
                        sequence: int) -> RelayAction:
        """Rendezvous side: originate backward traffic carrying
        ``payload`` down the waiting circuit (encode + own layer)."""
        state = self.circuit_state(circuit_id)
        if state.role != "rendezvous":
            raise ValueError("inject_backward requires a rendezvous "
                             "circuit")
        cell = encode_cell(payload, state.hop_keys.backward_mac)
        layered = unwrap_layer(state.hop_keys, cell, sequence,
                               forward=False)
        self.cells_relayed += 1
        return RelayAction("backward", state.prev_hop, layered)

    # -- client adoption and channels ----------------------------------------

    def adopt_client(self, client_id: str,
                     session_key: SessionKey) -> None:
        """Adopt a client (direct link or behind an SP): store the
        symmetric key s used for all its traffic (§3.5)."""
        if client_id in self.client_keys:
            raise ValueError(f"client {client_id} already adopted")
        self.client_keys[client_id] = session_key

    def configure_channels(self, n_channels: int) -> None:
        """Create the zone's C channels (administrator-controlled,
        §3.6.3)."""
        if self.channels:
            raise RuntimeError("channels already configured")
        self.channels = {i: Channel(i) for i in range(n_channels)}

    def attach_client_to_channels(self, client_id: str,
                                  channels: List[int],
                                  numeric_id: int) -> Dict[int, int]:
        """Attach an adopted client to its k channels; returns
        channel→slot.  ``numeric_id`` keys the chaff predictor."""
        key = self.client_keys.get(client_id)
        if key is None:
            raise KeyError(f"client {client_id} not adopted")
        slots: Dict[int, int] = {}
        for ch_id in channels:
            channel = self.channels[ch_id]
            slot = channel.add_member(numeric_id)
            slots[ch_id] = slot
            self._client_slots[(ch_id, slot)] = client_id
        self.predictor.add_client(numeric_id, key)
        return slots

    def client_at_slot(self, channel_id: int, slot: int) -> str:
        return self._client_slots[(channel_id, slot)]

    def reset_client_state(self) -> None:
        """Forget every adopted client and all channel membership.

        A mix restarting after a crash keeps its identity keys, zone
        enrollment, and published descriptor, but holds no client
        sessions: orphaned clients must re-run the §3.5 join protocol
        (used by :func:`repro.simulation.churn.recover_mix`)."""
        self.client_keys.clear()
        self.predictor = ChaffPredictor({})
        self.channels = {ch_id: Channel(ch_id) for ch_id in self.channels}
        self._client_slots.clear()

    def decode_channel_round(self, channel_id: int, xor_packet: bytes,
                             manifests: List[Tuple[int, int, bool]]
                             ) -> Tuple[Optional[int], bytes, List[int]]:
        """Decode one upstream XOR round for a channel.  The active
        client is channel state (the mix allocated the call)."""
        channel = self.channels[channel_id]
        active = None
        if channel.active_call is not None:
            active = channel.members[channel.active_call]
        return decode_round(xor_packet, manifests, self.predictor,
                            active_client=active)

    # -- reporting ------------------------------------------------------------

    def active_calls(self) -> int:
        return sum(1 for ch in self.channels.values() if ch.is_busy)

    def report_utilization(self) -> None:
        self.directory.report_utilization(self.mix_id,
                                          self.active_calls())

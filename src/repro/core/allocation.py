"""Channel allocation (§3.6.3).

Two allocation problems arise in the superpeer architecture:

1. **Static client→channel assignment.**  "The mix allocates a new
   client to k distinct channels.  We use a greedy algorithm that picks
   k distinct channels randomly from the least occupied channels."
   Assignments are static: "dynamic routing inevitably leaks
   information related to call activity [...] Therefore, Herd uses
   static allocations of clients to channels."

2. **Dynamic call→channel allocation.**  "When an outgoing/incoming
   call starts, the mix must dynamically allocate to the call an
   available channel (if any) among the k channels to which the
   caller/callee attaches.  This is an instance of the online bipartite
   matching problem.  A simple, optimal algorithm exists [KVV'90].  It
   initially ranks all channels randomly, and then allocates the
   available channel with the highest rank in each step."

Both are implemented here: :func:`assign_clients_to_channels` and
:class:`RankingMatcher` (with a first-fit variant for ablations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class ChannelAssignment:
    """The static map of clients to channels at one mix.

    ``channels_of[client]`` is the tuple of k channel ids the client
    attaches to; ``clients_of[channel]`` is the reverse index.
    """

    n_channels: int
    channels_of: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    clients_of: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self):
        for ch in range(self.n_channels):
            self.clients_of.setdefault(ch, [])

    def add_client(self, client: int, channels: Sequence[int]) -> None:
        if client in self.channels_of:
            raise ValueError(f"client {client} already assigned")
        channels = tuple(channels)
        if len(set(channels)) != len(channels):
            raise ValueError("channels must be distinct")
        for ch in channels:
            if not 0 <= ch < self.n_channels:
                raise ValueError(f"channel {ch} out of range")
        self.channels_of[client] = channels
        for ch in channels:
            self.clients_of[ch].append(client)

    def occupancy(self) -> List[int]:
        """Clients attached per channel."""
        return [len(self.clients_of[ch]) for ch in range(self.n_channels)]

    @property
    def n_clients(self) -> int:
        return len(self.channels_of)


def assign_clients_to_channels(n_clients: int, n_channels: int, k: int,
                               rng: Optional[random.Random] = None
                               ) -> ChannelAssignment:
    """Greedy static assignment: each client gets ``k`` distinct
    channels picked randomly from the least-occupied channels.

    The paper's Fig. 3 toy example (k=2, N=6, C=4) has the ideal
    property that any C clients can call concurrently; this greedy rule
    approximates it at scale by keeping occupancy balanced.
    """
    rng = rng or random.Random(0)
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > n_channels:
        raise ValueError("k cannot exceed the number of channels")
    assignment = ChannelAssignment(n_channels)
    occupancy = [0] * n_channels
    for client in range(n_clients):
        chosen: List[int] = []
        # Pick k channels one at a time, each uniformly among the
        # currently least-occupied channels not yet chosen.
        excluded: Set[int] = set()
        for _ in range(k):
            candidates = [ch for ch in range(n_channels)
                          if ch not in excluded]
            min_occ = min(occupancy[ch] for ch in candidates)
            least = [ch for ch in candidates if occupancy[ch] == min_occ]
            ch = rng.choice(least)
            chosen.append(ch)
            excluded.add(ch)
            occupancy[ch] += 1
        assignment.add_client(client, chosen)
    return assignment


class RankingMatcher:
    """Online call→channel matching with the KVV RANKING algorithm.

    Channels receive a random permanent rank at construction; each
    arriving call is matched to the *highest-ranked available* channel
    among the k channels its client attaches to.  ``release`` frees a
    channel when the call ends (the classic algorithm is for one-shot
    matching; calls ending re-open channels, which preserves RANKING's
    greedy step as the paper describes).
    """

    def __init__(self, assignment: ChannelAssignment,
                 rng: Optional[random.Random] = None):
        rng = rng or random.Random(0)
        self.assignment = assignment
        ranks = list(range(assignment.n_channels))
        rng.shuffle(ranks)
        self._rank = {ch: rank for ch, rank in enumerate(ranks)}
        self._busy: Dict[int, int] = {}  # channel -> client
        self._active: Dict[int, int] = {}  # client -> channel
        self.calls_attempted = 0
        self.calls_blocked = 0

    def rank(self, channel: int) -> int:
        return self._rank[channel]

    def is_busy(self, channel: int) -> bool:
        return channel in self._busy

    def active_channel(self, client: int) -> Optional[int]:
        return self._active.get(client)

    def try_allocate(self, client: int,
                     exclude: Collection[int] = ()) -> Optional[int]:
        """Allocate a channel for a starting call; None if blocked.

        A client already on a call is blocked (one call at a time per
        client in our model, matching the trace semantics).  Channels
        in ``exclude`` are never allocated — the call manager passes
        the channels of failed or blacklisted SPs (§3.6.4).
        """
        self.calls_attempted += 1
        if client in self._active:
            self.calls_blocked += 1
            return None
        channels = self.assignment.channels_of.get(client)
        if channels is None:
            raise KeyError(f"client {client} has no channel assignment")
        free = [ch for ch in channels
                if ch not in self._busy and ch not in exclude]
        if not free:
            self.calls_blocked += 1
            return None
        best = min(free, key=lambda ch: self._rank[ch])
        self._busy[best] = client
        self._active[client] = best
        return best

    def release(self, client: int) -> None:
        """End the client's call, freeing its channel."""
        channel = self._active.pop(client, None)
        if channel is not None:
            del self._busy[channel]

    @property
    def blocking_rate(self) -> float:
        if self.calls_attempted == 0:
            return 0.0
        return self.calls_blocked / self.calls_attempted

    @property
    def channels_in_use(self) -> int:
        return len(self._busy)


class FirstFitMatcher(RankingMatcher):
    """Ablation baseline: allocate the lowest-numbered free channel
    instead of the highest-ranked one."""

    def try_allocate(self, client: int,
                     exclude: Collection[int] = ()) -> Optional[int]:
        self.calls_attempted += 1
        if client in self._active:
            self.calls_blocked += 1
            return None
        channels = self.assignment.channels_of.get(client)
        if channels is None:
            raise KeyError(f"client {client} has no channel assignment")
        free = sorted(ch for ch in channels
                      if ch not in self._busy and ch not in exclude)
        if not free:
            self.calls_blocked += 1
            return None
        best = free[0]
        self._busy[best] = client
        self._active[client] = best
        return best

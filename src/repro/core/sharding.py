"""Shard-boundary declarations for the zone-parallel execution plane.

ROADMAP item 1 splits the simulation across zone worker processes;
every record that crosses that boundary (fan-out inputs, merge-step
outputs, observer samples) is serialised with :mod:`pickle`.  A field
that cannot be pickled — a lambda, an open handle, a socket, a lock,
an event loop, a locally-defined class — fails at fan-out time, in
production, long after the type was written.

:func:`shard_crossing` moves that failure to review time: decorating a
dataclass declares "instances of this type are serialised between
shard workers", and herdlint's HL104 statically rejects non-picklable
field types on every declared class.  The decorator itself is a
zero-cost marker (it only stamps ``__shard_crossing__``); classes that
cannot use a decorator may set ``__shard_crossing__ = True`` directly.
"""

from __future__ import annotations

from typing import Type, TypeVar

T = TypeVar("T")


def shard_crossing(cls: Type[T]) -> Type[T]:
    """Declare that instances of ``cls`` are pickled across the zone
    shard boundary.  HL104 statically checks every field annotation of
    a declared class for types that cannot survive the trip."""
    cls.__shard_crossing__ = True
    return cls


def is_shard_crossing(cls: type) -> bool:
    """True when ``cls`` (or a base) was declared shard-crossing."""
    return bool(getattr(cls, "__shard_crossing__", False))

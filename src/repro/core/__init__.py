"""The Herd anonymity network: the paper's primary contribution.

This package implements every protocol component of Herd (§3):

* :mod:`repro.core.zone` / :mod:`repro.core.directory` — trust zones,
  zone directories, descriptor/rendezvous storage and link-rate
  orchestration (§3, §3.4.2–3.4.3).
* :mod:`repro.core.circuit` — incremental circuit construction with
  per-hop key negotiation and layered encryption (§3.2).
* :mod:`repro.core.mix` — mix relay logic: DTLS links, layer peeling,
  rendezvous splicing, SP channel rounds (§3).
* :mod:`repro.core.client` — caller/callee state machines with
  constant-rate chaffed links (§3.4.1).
* :mod:`repro.core.superpeer` / :mod:`repro.core.channel` /
  :mod:`repro.core.network_coding` — the untrusted superpeer layer with
  upstream XOR network coding and encrypted manifests (§3.6).
* :mod:`repro.core.allocation` — static greedy channel assignment and
  the Karp–Vazirani–Vazirani RANKING algorithm for dynamic call-to-
  channel allocation (§3.6.3).
* :mod:`repro.core.chaffing` — chaff scheduling and epoch-based rate
  controllers (§3.4).
* :mod:`repro.core.signaling` — in-band call signaling that hides call
  activity from SPs (§3.6.2).
* :mod:`repro.core.join` — the join protocol (§3.5).
* :mod:`repro.core.blacklist` — SP quality monitoring (§3.6.4).
* :mod:`repro.core.invariants` — the security invariants I1–I8 (§3.7)
  as executable checks used by the test suite.
"""

from repro.core.allocation import (
    ChannelAssignment,
    RankingMatcher,
    assign_clients_to_channels,
)
from repro.core.chaffing import ConstantRateChaffer, RateController
from repro.core.channel import Channel, ChannelManifest
from repro.core.network_coding import ChaffPredictor, decode_round, xor_bytes
from repro.core.client import HerdClient
from repro.core.mix import Mix
from repro.core.superpeer import SuperPeer
from repro.core.directory import ZoneDirectory
from repro.core.zone import TrustZone, ZoneConfig
from repro.core.join import join_zone
from repro.core.rendezvous import CallSession, RendezvousService
from repro.core.callmanager import ClientCallAgent, MixCallManager
from repro.core.groupcall import GroupCall
from repro.core.blacklist import SPMonitor

__all__ = [
    "ChannelAssignment",
    "RankingMatcher",
    "assign_clients_to_channels",
    "ConstantRateChaffer",
    "RateController",
    "Channel",
    "ChannelManifest",
    "ChaffPredictor",
    "decode_round",
    "xor_bytes",
    "HerdClient",
    "Mix",
    "SuperPeer",
    "ZoneDirectory",
    "TrustZone",
    "ZoneConfig",
    "join_zone",
    "CallSession",
    "RendezvousService",
    "ClientCallAgent",
    "MixCallManager",
    "GroupCall",
    "SPMonitor",
]

"""Timeout, bounded-retry, and backoff primitives (§3.1, §3.5).

Herd's availability story rests on clients recovering from mix and SP
failures: "In the case of a mix or superpeer failure, a client contacts
another mix in the same zone and re-joins."  This module provides the
mechanics every recovery path shares — deadlines, bounded retries, and
exponential backoff with jitter — driven entirely by *virtual* clocks
so that simulated recoveries are reproducible bit-for-bit and never
touch the wall clock:

* :class:`VirtualClock` — a trivial advanceable clock for synchronous
  callers (tests, testbed-level rejoins),
* :class:`Deadline` — a timeout against anything exposing ``.now``
  (a :class:`VirtualClock` or the netsim
  :class:`~repro.netsim.engine.EventLoop`),
* :class:`BackoffPolicy` / :func:`call_with_retries` — synchronous
  bounded retries, accounting backoff on the virtual clock,
* :class:`LoopRetry` — the same policy expressed as scheduled events on
  an :class:`~repro.netsim.engine.EventLoop`, used by the fault
  injector's re-join and failover paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Type


class RetryError(RuntimeError):
    """Every attempt failed; carries the count and the last error."""

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_error!r}")
        self.attempts = attempts
        self.last_error = last_error


class TimeoutExpired(RuntimeError):
    """A :class:`Deadline` ran out."""


@dataclass
class VirtualClock:
    """A manually advanced clock for synchronous retry flows."""

    now: float = 0.0

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.now += seconds


@dataclass
class Deadline:
    """A timeout bound to a virtual clock (anything with ``.now``)."""

    clock: Any
    timeout_s: float

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self._expires_at = self.clock.now + self.timeout_s

    @property
    def expires_at(self) -> float:
        return self._expires_at

    @property
    def remaining(self) -> float:
        return max(0.0, self._expires_at - self.clock.now)

    @property
    def expired(self) -> bool:
        return self.clock.now >= self._expires_at

    def check(self) -> None:
        """Raise :class:`TimeoutExpired` if the deadline has passed."""
        if self.expired:
            raise TimeoutExpired(
                f"deadline of {self.timeout_s}s expired at "
                f"{self._expires_at}s (now {self.clock.now}s)")


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with bounded attempts and optional jitter.

    The delay after the n-th consecutive failure (1-based) is

        min(max_delay_s, base_delay_s * multiplier ** (n - 1))

    scaled by a uniform ±``jitter`` fraction when an ``rng`` is given
    (jitter de-synchronizes mass re-joins after a zone-wide failure;
    a seeded rng keeps it deterministic).
    """

    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    max_attempts: int = 6
    jitter: float = 0.1

    def __post_init__(self):
        if self.base_delay_s < 0:
            raise ValueError("base delay cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max delay cannot be below the base delay")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_for(self, failures: int,
                  rng: Optional[random.Random] = None) -> float:
        """Backoff delay after the ``failures``-th failure (1-based)."""
        if failures < 1:
            raise ValueError("failures is a 1-based count")
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** (failures - 1))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)


@dataclass
class RetryOutcome:
    """A successful retried call: its value and what it took."""

    value: Any
    attempts: int
    backoff_s: float


def call_with_retries(fn: Callable[[], Any], *,
                      policy: Optional[BackoffPolicy] = None,
                      clock: Optional[VirtualClock] = None,
                      rng: Optional[random.Random] = None,
                      retry_on: Tuple[Type[BaseException], ...]
                      = (Exception,),
                      deadline: Optional[Deadline] = None,
                      on_retry: Optional[Callable[[int, BaseException,
                                                   float], None]] = None
                      ) -> RetryOutcome:
    """Call ``fn`` until it succeeds, backing off on the virtual clock.

    Raises :class:`RetryError` once the policy's attempts are exhausted
    or the next backoff would overrun ``deadline``.  ``on_retry`` is
    invoked as ``(failures, error, delay)`` before each backoff.
    """
    policy = policy or BackoffPolicy()
    clock = clock or VirtualClock()
    backoff = 0.0
    last: BaseException
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return RetryOutcome(fn(), attempt, backoff)
        except retry_on as exc:
            last = exc
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay_for(attempt, rng)
            if deadline is not None and deadline.remaining < delay:
                break
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            clock.advance(delay)
            backoff += delay
    raise RetryError(attempt, last)


@dataclass
class LoopRetry:
    """Bounded retries as events on a netsim event loop.

    The first attempt runs at ``start_delay_s``; each failure schedules
    the next attempt after the policy's backoff (jittered with the
    loop's seeded rng unless one is supplied).  Callbacks receive the
    task itself, which exposes ``value``, ``attempts`` and
    ``backoff_s``.
    """

    loop: Any
    fn: Callable[[], Any]
    policy: BackoffPolicy = field(default_factory=BackoffPolicy)
    rng: Optional[random.Random] = None
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    on_success: Optional[Callable[["LoopRetry"], None]] = None
    on_give_up: Optional[Callable[["LoopRetry"], None]] = None
    start_delay_s: float = 0.0
    label: str = ""

    def __post_init__(self):
        self.attempts = 0
        self.backoff_s = 0.0
        self.started_at = self.loop.now
        self.finished_at: Optional[float] = None
        self.value: Any = None
        self.failure: Optional[BaseException] = None
        self.done = False
        self.succeeded = False
        self.loop.schedule(self.start_delay_s, self._attempt)

    def _attempt(self) -> None:
        self.attempts += 1
        try:
            value = self.fn()
        except self.retry_on as exc:
            if self.attempts >= self.policy.max_attempts:
                self.done = True
                self.failure = exc
                self.finished_at = self.loop.now
                if self.on_give_up is not None:
                    self.on_give_up(self)
                return
            delay = self.policy.delay_for(
                self.attempts, self.rng if self.rng is not None
                else getattr(self.loop, "rng", None))
            self.backoff_s += delay
            self.loop.schedule(delay, self._attempt)
        else:
            self.done = True
            self.succeeded = True
            self.value = value
            self.finished_at = self.loop.now
            if self.on_success is not None:
                self.on_success(self)

    @property
    def elapsed_s(self) -> Optional[float]:
        """Virtual time from start to resolution (None while pending)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

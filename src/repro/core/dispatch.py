"""Control-plane dispatch state machines, one per role (§3.2-§3.6).

:mod:`repro.core.wire` gives every control message a strict decoder;
this module adds the other half of the contract: for *every* defined
message type, each role decides up front whether it handles the type or
refuses it.  The decision is a data literal — a ``*_DISPATCH`` dict
from ``MSG_*`` constant to handler (or the :data:`REJECT` sentinel) —
so the herdlint HL006 rule can check exhaustiveness statically: adding
a message type to ``wire.py`` without teaching every role about it
fails the lint gate before it can fail in a deployment.

Roles:

* **Mix** — accepts circuit CREATEs, join requests, rendezvous
  registrations, and relays call setup (INVITE/ACCEPT) toward the
  rendezvous point.  It must never accept the client-bound replies.
* **Client** — accepts CREATED, join responses, and call setup
  delivered over its circuit; it must never accept the mix-bound
  requests (a client is not a relay).
* **Superpeer** — rejects *every* control message (invariant I8: "SPs
  operate on opaque ciphertext only"); a control message addressed to
  an SP is a protocol violation by definition.

Handlers decode the payload and call into a role-specific
``*ControlPlane`` object, keeping the wire layer free of protocol
state and the protocol objects free of wire parsing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.circuit import CreateReply, CreateRequest
from repro.core.wire import (
    MSG_ACCEPT,
    MSG_CREATE,
    MSG_CREATED,
    MSG_INVITE,
    MSG_JOIN_REQUEST,
    MSG_JOIN_RESPONSE,
    MSG_RENDEZVOUS_REGISTER,
    CallSetup,
    JoinRequest,
    JoinResponse,
    RendezvousRegister,
    WireError,
    decode_call_setup,
    decode_create,
    decode_created,
    decode_join_request,
    decode_join_response,
    decode_rendezvous_register,
    encode_created,
    encode_join_response,
    type_name,
)


class Reject:
    """Sentinel marking a message type a role explicitly refuses."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "REJECT"


REJECT = Reject()


class MixControlPlane:
    """Callbacks a mix implementation provides to its dispatcher."""

    def on_create(self, request: CreateRequest) -> CreateReply:
        raise NotImplementedError

    def on_join_request(self, request: JoinRequest) -> JoinResponse:
        raise NotImplementedError

    def on_rendezvous_register(self, message: RendezvousRegister) -> None:
        raise NotImplementedError

    def on_call_setup(self, message: CallSetup) -> None:
        """Relay an INVITE/ACCEPT toward the rendezvous point."""
        raise NotImplementedError


class ClientControlPlane:
    """Callbacks a client implementation provides to its dispatcher."""

    def on_created(self, reply: CreateReply) -> None:
        raise NotImplementedError

    def on_join_response(self, response: JoinResponse) -> None:
        raise NotImplementedError

    def on_call_setup(self, message: CallSetup) -> None:
        """An INVITE ringing in, or an ACCEPT answering our INVITE."""
        raise NotImplementedError


def _mix_create(plane: MixControlPlane, data: bytes) -> Optional[bytes]:
    return encode_created(plane.on_create(decode_create(data)))


def _mix_join_request(plane: MixControlPlane,
                      data: bytes) -> Optional[bytes]:
    return encode_join_response(
        plane.on_join_request(decode_join_request(data)))


def _mix_rendezvous_register(plane: MixControlPlane,
                             data: bytes) -> Optional[bytes]:
    plane.on_rendezvous_register(decode_rendezvous_register(data))
    return None


def _mix_call_setup(plane: MixControlPlane,
                    data: bytes) -> Optional[bytes]:
    plane.on_call_setup(decode_call_setup(data))
    return None


def _client_created(plane: ClientControlPlane,
                    data: bytes) -> Optional[bytes]:
    plane.on_created(decode_created(data))
    return None


def _client_join_response(plane: ClientControlPlane,
                          data: bytes) -> Optional[bytes]:
    plane.on_join_response(decode_join_response(data))
    return None


def _client_call_setup(plane: ClientControlPlane,
                       data: bytes) -> Optional[bytes]:
    plane.on_call_setup(decode_call_setup(data))
    return None


Handler = Callable[[object, bytes], Optional[bytes]]

MIX_DISPATCH: Dict[int, object] = {
    MSG_CREATE: _mix_create,
    MSG_CREATED: REJECT,
    MSG_JOIN_REQUEST: _mix_join_request,
    MSG_JOIN_RESPONSE: REJECT,
    MSG_RENDEZVOUS_REGISTER: _mix_rendezvous_register,
    MSG_INVITE: _mix_call_setup,
    MSG_ACCEPT: _mix_call_setup,
}

CLIENT_DISPATCH: Dict[int, object] = {
    MSG_CREATE: REJECT,
    MSG_CREATED: _client_created,
    MSG_JOIN_REQUEST: REJECT,
    MSG_JOIN_RESPONSE: _client_join_response,
    MSG_RENDEZVOUS_REGISTER: REJECT,
    MSG_INVITE: _client_call_setup,
    MSG_ACCEPT: _client_call_setup,
}

#: Invariant I8: a superpeer relays ciphertext and must refuse every
#: control message; each type is rejected *explicitly* so HL006 can
#: prove the refusal was a decision, not an omission.
SUPERPEER_DISPATCH: Dict[int, object] = {
    MSG_CREATE: REJECT,
    MSG_CREATED: REJECT,
    MSG_JOIN_REQUEST: REJECT,
    MSG_JOIN_RESPONSE: REJECT,
    MSG_RENDEZVOUS_REGISTER: REJECT,
    MSG_INVITE: REJECT,
    MSG_ACCEPT: REJECT,
}


def dispatch(table: Dict[int, object], plane: object, data: bytes,
             role: str = "peer") -> Optional[bytes]:
    """Route one encoded control message through a role's table.

    Returns the encoded reply for request/response exchanges
    (CREATE→CREATED, JOIN_REQUEST→JOIN_RESPONSE), else None.  Raises
    :class:`WireError` for empty input, unknown types, and types the
    role explicitly rejects — the same "never act on a malformed
    message" posture as the decoders.
    """
    if not data:
        raise WireError("empty control message")
    msg_type = data[0]
    handler = table.get(msg_type)
    if handler is None:
        raise WireError(f"unknown message type 0x{msg_type:02x}")
    if handler is REJECT:
        raise WireError(f"{role} rejects {type_name(msg_type)}")
    return handler(plane, data)  # type: ignore[operator]


def dispatch_mix(plane: MixControlPlane, data: bytes) -> Optional[bytes]:
    return dispatch(MIX_DISPATCH, plane, data, role="mix")


def dispatch_client(plane: ClientControlPlane,
                    data: bytes) -> Optional[bytes]:
    return dispatch(CLIENT_DISPATCH, plane, data, role="client")


def dispatch_superpeer(plane: object, data: bytes) -> Optional[bytes]:
    return dispatch(SUPERPEER_DISPATCH, plane, data, role="superpeer")

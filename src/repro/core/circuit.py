"""Incremental circuit construction (§3.2).

"Clients build circuits incrementally, negotiating a symmetric key with
each mix on the circuit, one hop at the time, using s over DTLS links."

Herd borrows its signaling and cryptographic protocol from Tor, so the
construction mirrors Tor's CREATE/EXTEND:

* The client sends a :class:`CreateRequest` — an ephemeral X25519
  public key — to the next mix (relayed through the partial circuit).
* The mix answers with a :class:`CreateReply` — its own ephemeral key
  plus a key-confirmation MAC — and installs a
  :class:`RelayCircuitState` entry in its circuit table.
* Both sides derive the hop's four symmetric keys (forward/backward
  stream + MAC keys, :class:`~repro.crypto.onion.HopKeys`).

A standard Herd circuit has two mixes: the client's *entry* mix and a
*rendezvous* mix in the same zone (invariant I4).  The full five-hop
path caller→entry→rdv⟺rdv'→entry'→callee arises from concatenating two
such circuits at the rendezvous (see :mod:`repro.core.rendezvous`).
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.kdf import hkdf_sha256
from repro.crypto.onion import HopKeys, OnionCircuitKeys
from repro.crypto.x25519 import X25519PrivateKey

_circuit_ids = itertools.count(1)

_CONFIRM_LABEL = b"herd-create-confirm"


def new_circuit_id() -> int:
    """Globally unique circuit id for simulations.  (On the wire these
    are per-link ids; a global counter is an acceptable simplification
    that preserves uniqueness.)"""
    return next(_circuit_ids)


@dataclass(frozen=True)
class CreateRequest:
    """Client→mix: open a hop.  Carries the client's ephemeral key and
    the circuit id the hop will be known by on the client-facing link."""

    circuit_id: int
    client_ephemeral: bytes


@dataclass(frozen=True)
class CreateReply:
    """Mix→client: the mix's ephemeral key plus key confirmation."""

    circuit_id: int
    mix_ephemeral: bytes
    confirmation: bytes


def _derive_hop(shared: bytes, client_eph: bytes,
                mix_eph: bytes) -> Tuple[HopKeys, bytes]:
    context = client_eph + mix_eph
    keys = HopKeys.from_shared_secret(shared, context=context)
    confirm_key = hkdf_sha256(shared, info=b"confirm" + context)
    confirmation = hmac.new(confirm_key, _CONFIRM_LABEL,
                            hashlib.sha256).digest()[:16]
    return keys, confirmation


class ClientHopHandshake:
    """Client side of one hop's key negotiation."""

    def __init__(self, circuit_id: int,
                 rng=None):
        self.circuit_id = circuit_id
        self._ephemeral = X25519PrivateKey.generate(rng)

    def request(self) -> CreateRequest:
        return CreateRequest(self.circuit_id,
                             self._ephemeral.public_bytes)

    def finish(self, reply: CreateReply) -> HopKeys:
        """Process the mix's reply; raises ValueError on a bad
        confirmation (MITM or corruption)."""
        if reply.circuit_id != self.circuit_id:
            raise ValueError("create reply for a different circuit")
        shared = self._ephemeral.exchange(reply.mix_ephemeral)
        keys, confirmation = _derive_hop(
            shared, self._ephemeral.public_bytes, reply.mix_ephemeral)
        if not hmac.compare_digest(confirmation, reply.confirmation):
            raise ValueError("hop key confirmation failed")
        return keys


def mix_process_create(request: CreateRequest,
                       rng=None) -> Tuple[CreateReply, HopKeys]:
    """Mix side of the hop handshake: returns the reply to send and the
    hop keys to install in the circuit table."""
    ephemeral = X25519PrivateKey.generate(rng)
    shared = ephemeral.exchange(request.client_ephemeral)
    keys, confirmation = _derive_hop(
        shared, request.client_ephemeral, ephemeral.public_bytes)
    reply = CreateReply(request.circuit_id, ephemeral.public_bytes,
                        confirmation)
    return reply, keys


@dataclass
class RelayCircuitState:
    """One mix's entry in its circuit table.

    ``prev_hop``/``next_hop`` are link peers (invariant I2: an interior
    mix knows only these); ``hop_keys`` peel/add this mix's layer;
    ``role`` is "entry", "middle", or "rendezvous".
    """

    circuit_id: int
    hop_keys: HopKeys
    prev_hop: str
    next_hop: Optional[str] = None
    role: str = "entry"
    #: For a rendezvous mix: the circuit id spliced onto this one.
    spliced_circuit: Optional[int] = None


@dataclass
class Circuit:
    """The client's view of an established circuit."""

    circuit_id: int
    #: Mix ids along the path, entry first.
    path: List[str]
    keys: OnionCircuitKeys

    @property
    def entry_mix(self) -> str:
        return self.path[0]

    @property
    def rendezvous_mix(self) -> str:
        return self.path[-1]

    def __len__(self) -> int:
        return len(self.path)


class CircuitBuilder:
    """Builds a client circuit hop by hop against live mix objects.

    ``mix_resolver`` maps a mix id to an object exposing
    ``process_create(request) -> CreateReply`` (the
    :class:`~repro.core.mix.Mix` API).  Extension requests are relayed
    by the already-built prefix in a real deployment; here the builder
    performs the same cryptographic exchanges in order, and the mixes
    install identical state, which is what the simulations exercise.
    """

    def __init__(self, mix_resolver, rng=None):
        self._resolve = mix_resolver
        self._rng = rng

    def build(self, path: List[str], client_name: str) -> Circuit:
        if not path:
            raise ValueError("circuit path must contain at least one mix")
        circuit_id = new_circuit_id()
        hops: List[HopKeys] = []
        prev = client_name
        for i, mix_id in enumerate(path):
            mix = self._resolve(mix_id)
            handshake = ClientHopHandshake(circuit_id, self._rng)
            next_hop = path[i + 1] if i + 1 < len(path) else None
            if i == len(path) - 1:
                # The last hop is the rendezvous mix; in a single-mix
                # zone it doubles as the entry (§3.3: "not necessarily
                # distinct").
                role = "rendezvous"
            elif i == 0:
                role = "entry"
            else:
                role = "middle"
            reply = mix.process_create(handshake.request(), prev_hop=prev,
                                       next_hop=next_hop, role=role)
            hops.append(handshake.finish(reply))
            prev = mix_id
        return Circuit(circuit_id=circuit_id, path=list(path),
                       keys=OnionCircuitKeys(hops))

"""Zone directories (§3.3–3.5).

Each zone runs a directory server that

* issues client certificates on join ("a client obtains a signed
  certificate from a zone directory that contains a client ID and the
  zone's signature", §3.3),
* stores participant *descriptors* ("descriptors containing public
  keys l and s of the zone participants are published in their
  directory, where they can be queried", §3.2),
* stores *rendezvous records* ("each zone directory server stores the
  rendezvous mixes of all the clients attached to that zone (client's
  public key and rendezvous mix IP address)", §3.3),
* orchestrates link-rate epochs from mixes' utilization reports
  (§3.4.2: "mixes periodically report statistics about link utilization
  to their directory, which then signals them to ramp up/down").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.zone import TrustZone
from repro.crypto.keys import IdentityKeyPair, ShortTermKeyPair
from repro.crypto.pki import (
    Certificate,
    Descriptor,
    RootOfTrust,
    issue_certificate,
)


class DirectoryStalledError(RuntimeError):
    """The zone directory is not answering (a ``DIRECTORY_STALL``
    fault window).  A ``RuntimeError`` subclass so every existing
    join-retry path — :func:`~repro.core.join.join_with_retries` and
    the fault injector's :class:`~repro.core.retry.LoopRetry` re-joins
    — backs off and retries instead of aborting."""


@dataclass(frozen=True)
class RendezvousRecord:
    """A client's published rendezvous point: its public identity key
    and the rendezvous mix's address within the zone."""

    client_public: bytes
    rendezvous_mix: str


class ZoneDirectory:
    """The directory server of one trust zone."""

    def __init__(self, zone: TrustZone, root: RootOfTrust,
                 rng: Optional[random.Random] = None):
        self.zone = zone
        self.rng = rng or random.Random(0)
        self.identity = IdentityKeyPair.generate(self.rng)
        self.short_term = ShortTermKeyPair.generate(self.rng)
        self.certificate = root.certify_zone_directory(
            zone.zone_id, self.identity.public_bytes,
            self.short_term.public_bytes)
        self._descriptors: Dict[str, Descriptor] = {}
        self._rendezvous: Dict[bytes, RendezvousRecord] = {}
        self._issued: Dict[str, Certificate] = {}
        self._utilization_reports: Dict[str, float] = {}
        #: When True, the directory refuses redirection requests
        #: (see :class:`DirectoryStalledError`); set/cleared by the
        #: fault injector's ``DIRECTORY_STALL`` window.
        self.stalled = False

    # -- certification -----------------------------------------------------

    def enroll(self, subject_id: str, role: str, identity_public: bytes,
               short_term_public: bytes) -> Certificate:
        """Issue a certificate binding a participant to this zone."""
        if subject_id in self._issued:
            raise ValueError(f"{subject_id} already enrolled")
        cert = issue_certificate(
            self.identity.signing_key, subject_id, role,
            self.zone.zone_id, identity_public, short_term_public)
        self._issued[subject_id] = cert
        return cert

    def certificate_of(self, subject_id: str) -> Optional[Certificate]:
        return self._issued.get(subject_id)

    # -- descriptors -------------------------------------------------------

    def publish_descriptor(self, descriptor: Descriptor) -> None:
        if descriptor.zone_id != self.zone.zone_id:
            raise ValueError("descriptor belongs to a different zone")
        if not descriptor.verify():
            raise ValueError("descriptor signature invalid")
        self._descriptors[descriptor.subject_id] = descriptor

    def lookup_descriptor(self, subject_id: str) -> Optional[Descriptor]:
        return self._descriptors.get(subject_id)

    def mix_descriptors(self) -> List[Descriptor]:
        return [d for d in self._descriptors.values()
                if d.subject_id in self.zone.mix_ids]

    # -- mix selection -----------------------------------------------------

    def pick_mix(self, exclude: Optional[str] = None) -> str:
        """A uniformly random mix of the zone (used for join redirection
        and rendezvous selection — invariant I5 requires uniformity)."""
        if self.stalled:
            raise DirectoryStalledError(
                f"directory of zone {self.zone.zone_id} is not "
                "responding")
        candidates = [m for m in self.zone.mix_ids if m != exclude]
        if not candidates:
            raise RuntimeError(f"zone {self.zone.zone_id} has no "
                               "(other) mixes")
        return self.rng.choice(candidates)

    # -- rendezvous records -------------------------------------------------

    def publish_rendezvous(self, client_public: bytes,
                           rendezvous_mix: str) -> None:
        if rendezvous_mix not in self.zone.mix_ids:
            raise ValueError(f"{rendezvous_mix} is not a mix of zone "
                             f"{self.zone.zone_id}")
        self._rendezvous[client_public] = RendezvousRecord(
            client_public, rendezvous_mix)

    def lookup_rendezvous(self, client_public: bytes
                          ) -> Optional[RendezvousRecord]:
        return self._rendezvous.get(client_public)

    # -- rate orchestration ---------------------------------------------------

    def report_utilization(self, mix_id: str, active_calls: float) -> None:
        """A mix's periodic utilization report (aggregate call count on
        its link group)."""
        if mix_id not in self.zone.mix_ids:
            raise ValueError(f"unknown mix {mix_id}")
        self._utilization_reports[mix_id] = active_calls

    def run_epoch(self, epoch: int) -> Dict[str, int]:
        """Close the epoch: feed aggregated reports to the zone's rate
        controllers and return the rates every link group must apply
        *simultaneously* (§3.4.2)."""
        total = sum(self._utilization_reports.values())
        self._utilization_reports.clear()
        return {
            "sp_links": self.zone.sp_rate.on_epoch(epoch, total),
            "intra_links": self.zone.intra_rate.on_epoch(epoch, total),
        }

    def run_interzone_epoch(self, epoch: int, other: "ZoneDirectory",
                            pair_calls: float) -> int:
        """Coordinate a rate change with another zone's directory for
        the links between the two zones (§3.4.3: "rate changes on links
        crossing zones require coordination between the directories of
        the two zones")."""
        mine = self.zone.interzone_controller(other.zone.zone_id)
        theirs = other.zone.interzone_controller(self.zone.zone_id)
        rate_a = mine.on_epoch(epoch, pair_calls)
        rate_b = theirs.on_epoch(epoch, pair_calls)
        # Both controllers see identical inputs, but take the max for
        # robustness: the pair's links must share one rate.
        rate = max(rate_a, rate_b)
        mine.rate = theirs.rate = rate
        return rate

"""In-band call signaling through untrusted SPs (§3.6.2).

"In the case of an incoming call, the mix simply chooses an available
channel to which the callee attaches (if any), and encrypts downstream
packets in the channel with the key s shared with the callee.  The
callee, which like every client, tries to decrypt every incoming packet
on each channel, is able to decrypt the information signaling an
incoming call [...] In the case of an outgoing call, the caller sets
the signaling bit in the manifest of the chaff packets it sends."

Downstream packets are fixed-size AEAD envelopes: only the addressed
client authenticates them; everyone else discards them as chaff
(Fig. 2a).  Idle channels carry uniformly random chaff of the same
size.  Four payload kinds exist::

    0x01 INCOMING   — ring: an inbound call is waiting on this channel
    0x02 GRANT      — response to a signaling bit: channel granted for
                      the client's outgoing call
    0x03 VOIP       — a voice cell for the channel's active call
    0x04 CONTROL    — other mix→client control traffic
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.chacha20 import ChaCha20Poly1305
from repro.crypto.keys import SessionKey
from repro.core.network_coding import CODED_PACKET_SIZE

KIND_INCOMING = 0x01
KIND_GRANT = 0x02
KIND_VOIP = 0x03
KIND_CONTROL = 0x04
_KINDS = (KIND_INCOMING, KIND_GRANT, KIND_VOIP, KIND_CONTROL)

#: Downstream packets match the upstream coded-packet size, so the two
#: directions of a client link are symmetric on the wire.
DOWNSTREAM_PACKET_SIZE = CODED_PACKET_SIZE
_AEAD_OVERHEAD = 16
_HEADER = struct.Struct("<BH")  # kind, payload length
_CAPACITY = DOWNSTREAM_PACKET_SIZE - _AEAD_OVERHEAD - _HEADER.size

_DOWN_PREFIX = b"dn"


def _nonce(channel_id: int, round_index: int) -> bytes:
    return _DOWN_PREFIX + struct.pack("<HQ", channel_id,
                                      round_index % (1 << 64))


def make_downstream_packet(key: SessionKey, channel_id: int,
                           round_index: int, kind: int,
                           payload: bytes) -> bytes:
    """Seal a downstream packet for the addressed client."""
    if kind not in _KINDS:
        raise ValueError(f"unknown downstream kind {kind}")
    if len(payload) > _CAPACITY:
        raise ValueError(f"payload exceeds downstream capacity "
                         f"({_CAPACITY} bytes)")
    clear = (_HEADER.pack(kind, len(payload))
             + payload.ljust(_CAPACITY, b"\x00"))
    aead = ChaCha20Poly1305(key.key)
    packet = aead.encrypt(_nonce(channel_id, round_index), clear)
    assert len(packet) == DOWNSTREAM_PACKET_SIZE
    return packet


def make_downstream_chaff(rng: random.Random) -> bytes:
    """Chaff for an idle channel: uniformly random bytes, authenticating
    under nobody's key."""
    return bytes(rng.getrandbits(8) for _ in range(DOWNSTREAM_PACKET_SIZE))


def open_downstream_packet(key: SessionKey, channel_id: int,
                           round_index: int, packet: bytes
                           ) -> Optional[Tuple[int, bytes]]:
    """Client-side trial decryption.  Returns (kind, payload) if the
    packet is addressed to this client, else None ("others discard the
    packet as chaff")."""
    if len(packet) != DOWNSTREAM_PACKET_SIZE:
        return None
    aead = ChaCha20Poly1305(key.key)
    try:
        clear = aead.decrypt(_nonce(channel_id, round_index), packet)
    except ValueError:
        return None
    kind, length = _HEADER.unpack(clear[:_HEADER.size])
    if kind not in _KINDS or length > _CAPACITY:
        return None
    return kind, clear[_HEADER.size:_HEADER.size + length]


@dataclass(frozen=True)
class IncomingCallAnnouncement:
    """Payload of an INCOMING packet: which call is ringing."""

    call_id: int

    def encode(self) -> bytes:
        return struct.pack("<Q", self.call_id)

    @classmethod
    def decode(cls, payload: bytes) -> "IncomingCallAnnouncement":
        (call_id,) = struct.unpack("<Q", payload[:8])
        return cls(call_id)


@dataclass(frozen=True)
class ChannelGrant:
    """Payload of a GRANT packet: the channel allocated to the
    signaling caller's outgoing call."""

    channel_id: int
    call_id: int

    def encode(self) -> bytes:
        return struct.pack("<HQ", self.channel_id, self.call_id)

    @classmethod
    def decode(cls, payload: bytes) -> "ChannelGrant":
        channel_id, call_id = struct.unpack("<HQ", payload[:10])
        return cls(channel_id, call_id)

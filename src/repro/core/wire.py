"""Wire encodings for Herd control-plane messages.

The data plane has precise wire formats (coded packets, manifests,
cells, DTLS records); this module gives the *control* messages the same
treatment so a deployment can actually interoperate across processes:

* CREATE / CREATED circuit handshakes (§3.2),
* descriptors and certificates (§3.2–3.3) — re-using their canonical
  signing bytes,
* rendezvous registration and call-setup (INVITE/ACCEPT) payloads,
* join requests/responses (§3.5).

The format is a minimal, explicit TLV: every message starts with a
1-byte type and each field is length-prefixed.  Decoding is strict —
trailing bytes, bad lengths, or unknown types raise
:class:`WireError` — because a mix must never act on a malformed
message.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.circuit import CreateRequest, CreateReply


class WireError(ValueError):
    """Raised for any malformed control message."""


class WireFormatError(WireError):
    """Raised for any malformed datagram *frame* (truncated header,
    trailing bytes, oversized payload, bad magic/version/kind).  A
    subclass of :class:`WireError` so existing handlers keep working;
    typed separately so the socket plane can distinguish "garbage on
    the wire" from "well-framed but bad control message" — and so no
    raw ``struct.error`` ever escapes a decoder."""


MSG_CREATE = 0x01
MSG_CREATED = 0x02
MSG_JOIN_REQUEST = 0x03
MSG_JOIN_RESPONSE = 0x04
MSG_RENDEZVOUS_REGISTER = 0x05
MSG_INVITE = 0x06
MSG_ACCEPT = 0x07

#: Name → type byte for every control message.  The dispatch state
#: machines (:mod:`repro.core.dispatch`) and the herdlint HL006
#: exhaustiveness rule both treat this as the authoritative list: a new
#: MSG_ constant must be added here and handled (or explicitly
#: rejected) by every role's dispatch table.
MESSAGE_TYPES = {
    "MSG_CREATE": MSG_CREATE,
    "MSG_CREATED": MSG_CREATED,
    "MSG_JOIN_REQUEST": MSG_JOIN_REQUEST,
    "MSG_JOIN_RESPONSE": MSG_JOIN_RESPONSE,
    "MSG_RENDEZVOUS_REGISTER": MSG_RENDEZVOUS_REGISTER,
    "MSG_INVITE": MSG_INVITE,
    "MSG_ACCEPT": MSG_ACCEPT,
}
_NAME_BY_TYPE = {value: name for name, value in MESSAGE_TYPES.items()}


def type_name(msg_type: int) -> str:
    """Human-readable name of a message type byte."""
    return _NAME_BY_TYPE.get(msg_type, f"0x{msg_type:02x}")


_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")


def _put_bytes(out: List[bytes], data: bytes) -> None:
    if len(data) > 0xFFFF:
        raise WireError("field too long")
    out.append(_U16.pack(len(data)))
    out.append(data)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise WireError("message truncated")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def field(self) -> bytes:
        return self.take(self.u16())

    def finish(self) -> None:
        if self._pos != len(self._data):
            raise WireError("trailing bytes after message")


def _expect_type(reader: _Reader, expected: int) -> None:
    (got,) = reader.take(1)
    if got != expected:
        raise WireError(f"unexpected message type 0x{got:02x}")


# -- circuit handshakes ---------------------------------------------------------

def encode_create(request: CreateRequest) -> bytes:
    out: List[bytes] = [bytes([MSG_CREATE]),
                        _U64.pack(request.circuit_id)]
    _put_bytes(out, request.client_ephemeral)
    return b"".join(out)


def decode_create(data: bytes) -> CreateRequest:
    reader = _Reader(data)
    _expect_type(reader, MSG_CREATE)
    circuit_id = reader.u64()
    ephemeral = reader.field()
    reader.finish()
    if len(ephemeral) != 32:
        raise WireError("ephemeral key must be 32 bytes")
    return CreateRequest(circuit_id, ephemeral)


def encode_created(reply: CreateReply) -> bytes:
    out: List[bytes] = [bytes([MSG_CREATED]),
                        _U64.pack(reply.circuit_id)]
    _put_bytes(out, reply.mix_ephemeral)
    _put_bytes(out, reply.confirmation)
    return b"".join(out)


def decode_created(data: bytes) -> CreateReply:
    reader = _Reader(data)
    _expect_type(reader, MSG_CREATED)
    circuit_id = reader.u64()
    ephemeral = reader.field()
    confirmation = reader.field()
    reader.finish()
    if len(ephemeral) != 32:
        raise WireError("ephemeral key must be 32 bytes")
    if len(confirmation) != 16:
        raise WireError("confirmation must be 16 bytes")
    return CreateReply(circuit_id, ephemeral, confirmation)


# -- join protocol ------------------------------------------------------------

@dataclass(frozen=True)
class JoinRequest:
    """Client→mix: the §3.5 key-establishment opener."""

    client_id: str
    client_ephemeral: bytes


@dataclass(frozen=True)
class JoinResponse:
    """Mix→client: adoption outcome."""

    numeric_id: int
    mix_short_term_public: bytes
    #: (sp_id, channel_id, slot) triples; empty for a direct adoption.
    attachments: Tuple[Tuple[str, int, int], ...] = ()


def encode_join_request(request: JoinRequest) -> bytes:
    out: List[bytes] = [bytes([MSG_JOIN_REQUEST])]
    _put_bytes(out, request.client_id.encode("utf-8"))
    _put_bytes(out, request.client_ephemeral)
    return b"".join(out)


def decode_join_request(data: bytes) -> JoinRequest:
    reader = _Reader(data)
    _expect_type(reader, MSG_JOIN_REQUEST)
    client_id = reader.field().decode("utf-8")
    ephemeral = reader.field()
    reader.finish()
    if len(ephemeral) != 32:
        raise WireError("ephemeral key must be 32 bytes")
    return JoinRequest(client_id, ephemeral)


def encode_join_response(response: JoinResponse) -> bytes:
    out: List[bytes] = [bytes([MSG_JOIN_RESPONSE]),
                        _U64.pack(response.numeric_id)]
    _put_bytes(out, response.mix_short_term_public)
    out.append(_U16.pack(len(response.attachments)))
    for sp_id, channel, slot in response.attachments:
        _put_bytes(out, sp_id.encode("utf-8"))
        out.append(_U16.pack(channel))
        out.append(_U16.pack(slot))
    return b"".join(out)


def decode_join_response(data: bytes) -> JoinResponse:
    reader = _Reader(data)
    _expect_type(reader, MSG_JOIN_RESPONSE)
    numeric_id = reader.u64()
    mix_public = reader.field()
    if len(mix_public) != 32:
        raise WireError("mix public key must be 32 bytes")
    count = reader.u16()
    attachments = []
    for _ in range(count):
        sp_id = reader.field().decode("utf-8")
        channel = reader.u16()
        slot = reader.u16()
        attachments.append((sp_id, channel, slot))
    reader.finish()
    return JoinResponse(numeric_id, mix_public, tuple(attachments))


# -- rendezvous / call setup -----------------------------------------------------

@dataclass(frozen=True)
class RendezvousRegister:
    """Client→directory (over its circuit): publish a rendezvous."""

    client_public: bytes
    rendezvous_mix: str


def encode_rendezvous_register(msg: RendezvousRegister) -> bytes:
    out: List[bytes] = [bytes([MSG_RENDEZVOUS_REGISTER])]
    _put_bytes(out, msg.client_public)
    _put_bytes(out, msg.rendezvous_mix.encode("utf-8"))
    return b"".join(out)


def decode_rendezvous_register(data: bytes) -> RendezvousRegister:
    reader = _Reader(data)
    _expect_type(reader, MSG_RENDEZVOUS_REGISTER)
    public = reader.field()
    mix_id = reader.field().decode("utf-8")
    reader.finish()
    if len(public) != 32:
        raise WireError("client public key must be 32 bytes")
    return RendezvousRegister(public, mix_id)


@dataclass(frozen=True)
class CallSetup:
    """INVITE/ACCEPT payload: an e2e ephemeral key plus the call id."""

    is_accept: bool
    call_id: int
    ephemeral: bytes


def encode_call_setup(msg: CallSetup) -> bytes:
    out: List[bytes] = [bytes([MSG_ACCEPT if msg.is_accept
                               else MSG_INVITE]),
                        _U64.pack(msg.call_id)]
    _put_bytes(out, msg.ephemeral)
    return b"".join(out)


def decode_call_setup(data: bytes) -> CallSetup:
    reader = _Reader(data)
    (msg_type,) = reader.take(1)
    if msg_type not in (MSG_INVITE, MSG_ACCEPT):
        raise WireError(f"unexpected message type 0x{msg_type:02x}")
    call_id = reader.u64()
    ephemeral = reader.field()
    reader.finish()
    if len(ephemeral) != 32:
        raise WireError("ephemeral key must be 32 bytes")
    return CallSetup(msg_type == MSG_ACCEPT, call_id, ephemeral)


# -- datagram cell framing (the real-network plane, DESIGN.md §14) -------------
#
# On the UDP transport every cell of the round engine rides one real
# datagram.  The frame is a fixed header plus length-prefixed fields:
#
#   magic(2) version(1) kind(1) round(u32) run(u32) seq(u32)
#   src(len16+bytes) dst(len16+bytes) payload(len16+bytes)
#
# ``round``/``run``/``seq`` are the emission coordinates the socket
# bridge uses to restore canonical tap order: ``run`` is the global
# index of the cell's emission run within its round (exactly the row
# index of the batch-v2 run table) and ``seq`` the cell's index inside
# the run.  Decoding is strict — short reads, trailing bytes, a bad
# magic/version, or an unknown kind code raise
# :class:`WireFormatError`, never ``struct.error``.

FRAME_MAGIC = b"HD"
FRAME_VERSION = 1
#: Emission kinds carried on the wire plane, fixed codes (the codes
#: are transport-internal: a tap never sees them — invariant I6).
FRAME_KINDS = ("data", "up", "xor", "down", "bcast", "chaff")
_KIND_CODE = {kind: i for i, kind in enumerate(FRAME_KINDS)}
_KIND_NAME = {i: kind for i, kind in enumerate(FRAME_KINDS)}

_U32 = struct.Struct("<I")
#: Largest payload a frame accepts: a safe single-datagram size on
#: loopback (IPv4 localhost MTU is 64 KiB; this leaves header room).
MAX_FRAME_PAYLOAD = 60_000


@dataclass(frozen=True)
class CellFrame:
    """One decoded datagram of the UDP cell plane."""

    round_index: int
    run: int
    seq: int
    kind: str
    src: str
    dst: str
    payload: bytes


def encode_cell_frame(frame: CellFrame) -> bytes:
    """Serialize one cell for the wire; inverse of
    :func:`decode_cell_frame`."""
    kind_code = _KIND_CODE.get(frame.kind)
    if kind_code is None:
        raise WireFormatError(f"unknown frame kind {frame.kind!r}")
    if len(frame.payload) > MAX_FRAME_PAYLOAD:
        raise WireFormatError(
            f"payload of {len(frame.payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte frame limit")
    out: List[bytes] = [FRAME_MAGIC,
                        bytes([FRAME_VERSION, kind_code]),
                        _U32.pack(frame.round_index),
                        _U32.pack(frame.run),
                        _U32.pack(frame.seq)]
    _put_bytes(out, frame.src.encode("utf-8"))
    _put_bytes(out, frame.dst.encode("utf-8"))
    _put_bytes(out, frame.payload)
    return b"".join(out)


def decode_cell_frame(data: bytes) -> CellFrame:
    """Parse one datagram back into a :class:`CellFrame`; any
    malformation raises :class:`WireFormatError`."""
    reader = _Reader(data)
    try:
        magic = reader.take(2)
        if magic != FRAME_MAGIC:
            raise WireFormatError(
                f"bad frame magic {magic.hex() or '(empty)'}")
        version, kind_code = reader.take(2)
        if version != FRAME_VERSION:
            raise WireFormatError(f"unsupported frame version "
                                  f"{version}")
        kind = _KIND_NAME.get(kind_code)
        if kind is None:
            raise WireFormatError(f"unknown frame kind code "
                                  f"0x{kind_code:02x}")
        round_index = _U32.unpack(reader.take(4))[0]
        run = _U32.unpack(reader.take(4))[0]
        seq = _U32.unpack(reader.take(4))[0]
        src = reader.field().decode("utf-8")
        dst = reader.field().decode("utf-8")
        payload = reader.field()
        reader.finish()
    except WireFormatError:
        raise
    except WireError as exc:
        raise WireFormatError(str(exc)) from exc
    except UnicodeDecodeError as exc:
        raise WireFormatError(
            f"frame name field is not UTF-8: {exc}") from exc
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise WireFormatError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte frame limit")
    return CellFrame(round_index=round_index, run=run, seq=seq,
                     kind=kind, src=src, dst=dst, payload=payload)

"""Superpeers (§3.6).

"SPs are well-connected, highly-available nodes with a public IP
address [...] Like clients, SPs are assumed to be continuously
available [...] but are not otherwise trusted."

A :class:`SuperPeer` hosts one or more channels:

* **Downstream** (Fig. 2a): it receives one packet per hosted channel
  per round from the mix and forwards it to *every* client in the
  channel; only the addressed client can decrypt it.
* **Upstream** (Fig. 2b): it collects one packet (plus 4-byte manifest)
  per client per round per channel and forwards the XOR of the packets,
  concatenated with the manifest list, to the mix.
* It buffers the full packets of the last few rounds so the mix can
  audit a round that fails to decode (§3.6.1).

Crucially, nothing here reads or depends on call state: the SP operates
on opaque ciphertext only (invariant I8).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro.core.network_coding import CODED_PACKET_SIZE, xor_bytes

#: Rounds of full packets kept for mix audits ("the SP is expected to
#: buffer [the full packets] for a couple of rounds").
AUDIT_BUFFER_ROUNDS = 3


@dataclass(frozen=True)
class UpstreamRound:
    """What the SP sends the mix for one channel round: the XOR of the
    client packets and the ordered, still-encrypted manifests."""

    channel_id: int
    round_index: int
    xor_packet: bytes
    manifests: Tuple[bytes, ...]


class SuperPeer:
    """One untrusted superpeer."""

    def __init__(self, sp_id: str, mix_id: str):
        self.sp_id = sp_id
        self.mix_id = mix_id
        #: channel id → ordered client ids (slot order).
        self.channel_clients: Dict[int, List[str]] = {}
        self._audit: Dict[int, Deque[Tuple[int, Tuple[bytes, ...]]]] = {}
        self.rounds_forwarded = 0
        self.packets_broadcast = 0
        #: Optional observability hook (see :class:`repro.obs
        #: .instrument.SuperPeerHook`): per-link byte/packet counters
        #: for the SP's logical links.
        self.obs = None

    def host_channel(self, channel_id: int,
                     clients: Sequence[str]) -> None:
        if channel_id in self.channel_clients:
            raise ValueError(f"channel {channel_id} already hosted")
        self.channel_clients[channel_id] = list(clients)
        self._audit[channel_id] = deque(maxlen=AUDIT_BUFFER_ROUNDS)

    def add_client(self, channel_id: int, client_id: str) -> int:
        """Attach a client to a hosted channel; returns its slot."""
        clients = self.channel_clients[channel_id]
        clients.append(client_id)
        return len(clients) - 1

    def reset_members(self) -> None:
        """Drop all channel membership and audit buffers but keep
        hosting the same channels.  A restarted SP re-registers with
        its mix empty; clients re-attach through the join protocol
        (used by :func:`repro.simulation.churn.recover_superpeer`)."""
        for channel_id in self.channel_clients:
            self.channel_clients[channel_id] = []
            self._audit[channel_id].clear()

    # -- upstream ------------------------------------------------------------

    def combine_upstream(self, channel_id: int, round_index: int,
                         packets: Sequence[bytes],
                         manifests: Sequence[bytes]) -> UpstreamRound:
        """XOR one round's client packets (Fig. 2b).

        ``packets``/``manifests`` are in slot order, one per attached
        client.  The SP validates only sizes — it cannot read anything.
        """
        clients = self.channel_clients[channel_id]
        if len(packets) != len(clients):
            raise ValueError(
                f"expected {len(clients)} packets, got {len(packets)}")
        if len(manifests) != len(clients):
            raise ValueError("one manifest required per client packet")
        if any(len(p) != CODED_PACKET_SIZE for p in packets):
            raise ValueError("client packet has the wrong size")
        self._audit[channel_id].append((round_index, tuple(packets)))
        self.rounds_forwarded += 1
        combined = UpstreamRound(
            channel_id=channel_id,
            round_index=round_index,
            xor_packet=xor_bytes(*packets),
            manifests=tuple(manifests),
        )
        if self.obs is not None:
            self.obs.upstream_round(
                channel_id, round_index, len(combined.xor_packet),
                sum(len(m) for m in combined.manifests))
        return combined

    def process_round(self, round_index: int,
                      channel_batches: Dict[
                          int, Tuple[Sequence[bytes], Sequence[bytes]]]
                      ) -> List[UpstreamRound]:
        """Round-synchronous batch entry point: combine every hosted
        channel's round in one call.

        ``channel_batches`` maps channel id → (packets, manifests) in
        slot order; channels are processed in sorted id order — the
        same order a per-channel caller iterates — so the XOR results,
        audit buffers, and observability hook calls are identical to
        ``len(channel_batches)`` individual :meth:`combine_upstream`
        calls (the observational-equivalence contract, DESIGN.md §9).
        """
        rounds = []
        for channel_id in sorted(channel_batches):
            packets, manifests = channel_batches[channel_id]
            rounds.append(self.combine_upstream(channel_id, round_index,
                                                packets, manifests))
        return rounds

    def audit_packets(self, channel_id: int,
                      round_index: int) -> Tuple[bytes, ...]:
        """Return the buffered full packets of a recent round so the mix
        can identify a misbehaving client (§3.6.1)."""
        for idx, packets in self._audit[channel_id]:
            if idx == round_index:
                return packets
        raise KeyError(f"round {round_index} no longer buffered")

    # -- downstream ------------------------------------------------------------

    def broadcast_downstream(self, channel_id: int,
                             packet: bytes) -> List[Tuple[str, bytes]]:
        """Fan one mix packet out to every client of the channel
        (Fig. 2a).  Returns (client, packet) pairs to transmit."""
        clients = self.channel_clients[channel_id]
        self.packets_broadcast += len(clients)
        if self.obs is not None:
            self.obs.downstream_broadcast(channel_id, len(packet),
                                          len(clients))
        return [(client, packet) for client in clients]

    # -- resource accounting ----------------------------------------------------

    def mix_link_rate_units(self) -> int:
        """Chaffed mix-link rate in call units: one per hosted channel."""
        return len(self.channel_clients)

    def client_link_rate_units(self) -> int:
        """Total client-side rate in call units: one per attachment."""
        return sum(len(c) for c in self.channel_clients.values())

"""Workload substrate: call traces and social graphs.

The paper's simulations are driven by a proprietary, IRB-approved trace
of 370 million mobile phone calls among 10.8 million subscribers, plus
Twitter (54M users) and Facebook (1,165 users) social datasets.  None
of these are available, so this package synthesizes statistically
matched substitutes (see DESIGN.md, "Substitutions"):

* :mod:`repro.workload.cdr` — call detail records and trace containers
  with concurrency/duty-cycle analytics.
* :mod:`repro.workload.generator` — a seeded synthetic CDR generator
  reproducing the aggregates the paper reports (diurnal load, ~1.6%
  peak duty cycle, median contact degree 12, heavy-tailed degrees).
* :mod:`repro.workload.social` — heavy-tailed social graph degree
  models for the Drac comparison (Twitter/Facebook-like).
* :mod:`repro.workload.datasets` — the three dataset presets with the
  paper's published statistics attached.
* :mod:`repro.workload.arrivals` — seeded arrival processes feeding
  the scenario engine's workloads (Poisson + trace replay).
"""

from repro.workload.arrivals import (
    arrival_times_from_trace,
    poisson_arrival_times,
)
from repro.workload.cdr import CallRecord, CallTrace
from repro.workload.generator import SyntheticTraceConfig, generate_trace
from repro.workload.social import SocialGraph, degree_sequence
from repro.workload.datasets import (
    DatasetSpec,
    MOBILE,
    TWITTER,
    FACEBOOK,
    DATASETS,
)

__all__ = [
    "CallRecord",
    "CallTrace",
    "arrival_times_from_trace",
    "poisson_arrival_times",
    "SyntheticTraceConfig",
    "generate_trace",
    "SocialGraph",
    "degree_sequence",
    "DatasetSpec",
    "MOBILE",
    "TWITTER",
    "FACEBOOK",
    "DATASETS",
]

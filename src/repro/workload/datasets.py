"""Dataset presets matching the paper's published statistics.

Three datasets drive the evaluation (§4.1.2):

* **Mobile** — 370M calls / 10.8M subscribers over one month.  Median
  contact degree 12 (Fig. 4, H=1), implying a median Drac bandwidth of
  96 KB/s; maximum 12 MB/s ⇒ max degree 1,500 (Fig. 5).
* **Twitter** — 54M users; median degree 8 (anonymity 8 at H=1, 512 at
  H=3 = 8³); max bandwidth 39 MB/s ⇒ max degree 4,875.
* **Facebook** — 1,165-user SOUPS dataset; median degree 343
  (anonymity 343 at H=1, 40M ≈ 343³ at H=3); max bandwidth 6.2 GB/s ⇒
  max degree 775,000.

Each :class:`DatasetSpec` records those targets plus a scaled-down
default simulation size; the generators consume the spec.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one of the paper's datasets."""

    name: str
    paper_n_users: int
    median_degree: int
    max_degree: int
    #: Default number of users when synthesizing a scaled-down version.
    default_sim_users: int

    @property
    def median_bandwidth_kbps(self) -> float:
        """Drac's median client bandwidth in KB/s (degree × 8 KB/s)."""
        return self.median_degree * 8.0

    @property
    def max_bandwidth_kbps(self) -> float:
        """Drac's maximum client bandwidth in KB/s."""
        return self.max_degree * 8.0


MOBILE = DatasetSpec(
    name="Mobile",
    paper_n_users=10_800_000,
    median_degree=12,
    max_degree=1_500,
    default_sim_users=20_000,
)

TWITTER = DatasetSpec(
    name="Twitter",
    paper_n_users=54_000_000,
    median_degree=8,
    max_degree=4_875,
    default_sim_users=20_000,
)

FACEBOOK = DatasetSpec(
    name="Facebook",
    paper_n_users=1_165,
    median_degree=343,
    max_degree=775_000,
    default_sim_users=1_165,
)

DATASETS = {spec.name: spec for spec in (MOBILE, TWITTER, FACEBOOK)}

#: Number of calls in the paper's mobile trace.
MOBILE_TRACE_CALLS = 370_000_000
#: Trace length in days.
MOBILE_TRACE_DAYS = 31
#: Average calls per subscriber per day implied by the trace.
MOBILE_CALLS_PER_USER_DAY = (MOBILE_TRACE_CALLS / MOBILE.paper_n_users
                             / MOBILE_TRACE_DAYS)
#: Peak fraction of users simultaneously on a call (§4.1.6).
MOBILE_PEAK_DUTY_CYCLE = 0.016

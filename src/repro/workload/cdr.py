"""Call detail records (CDRs) and trace containers.

The paper's mobile dataset "contains call times, durations, and salted
hashes of caller/callee telephone numbers" (§4.1.2).  A
:class:`CallRecord` carries the same fields (with integer user ids in
place of hashes); a :class:`CallTrace` wraps a list of records with the
analytics the evaluation needs:

* binned start/end times for the intersection attack (1-second bins for
  anonymity, 1-minute bins for the cost analysis, §4.1.2),
* the concurrency profile and *peak duty cycle* (§4.1.6 reports 1.6%),
* per-user contact lists (degree drives Drac's bandwidth).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class CallRecord:
    """One call: caller, callee, start time (s), duration (s)."""

    caller: int
    callee: int
    start: float
    duration: float

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("call duration must be non-negative")
        if self.caller == self.callee:
            raise ValueError("caller and callee must differ")

    @property
    def end(self) -> float:
        return self.start + self.duration


class CallTrace:
    """An immutable collection of call records with trace analytics."""

    def __init__(self, records: Iterable[CallRecord]):
        self.records: List[CallRecord] = sorted(records,
                                                key=lambda r: r.start)
        self._starts = np.array([r.start for r in self.records])
        self._ends = np.array([r.end for r in self.records])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def users(self) -> Set[int]:
        """All user ids appearing as caller or callee."""
        out: Set[int] = set()
        for r in self.records:
            out.add(r.caller)
            out.add(r.callee)
        return out

    @property
    def span(self) -> Tuple[float, float]:
        """(first start, last end) of the trace."""
        if not self.records:
            return (0.0, 0.0)
        return (float(self._starts.min()), float(self._ends.max()))

    def binned_events(self, bin_width: float) -> Tuple[np.ndarray,
                                                       np.ndarray]:
        """Start and end bin indices per call (the adversary's view in
        the intersection attack at the given time granularity)."""
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        return ((self._starts // bin_width).astype(np.int64),
                (self._ends // bin_width).astype(np.int64))

    def concurrency_profile(self, step: float = 60.0) -> np.ndarray:
        """Number of simultaneously active calls sampled every ``step``
        seconds over the trace span."""
        if not self.records:
            return np.zeros(0, dtype=np.int64)
        first, last = self.span
        times = np.arange(first, last + step, step)
        starts_sorted = np.sort(self._starts)
        ends_sorted = np.sort(self._ends)
        started = np.searchsorted(starts_sorted, times, side="right")
        ended = np.searchsorted(ends_sorted, times, side="right")
        return started - ended

    def peak_concurrency(self, step: float = 60.0) -> int:
        profile = self.concurrency_profile(step)
        return int(profile.max()) if profile.size else 0

    def peak_duty_cycle(self, n_users: int, step: float = 60.0) -> float:
        """Peak fraction of users simultaneously on a call (the paper's
        1.6%).  Each active call occupies *two* users."""
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        return 2.0 * self.peak_concurrency(step) / n_users

    def contact_degrees(self) -> Dict[int, int]:
        """Number of distinct call partners per user over the trace —
        what the paper calls contact-list size for the Mobile dataset."""
        contacts: Dict[int, Set[int]] = {}
        for r in self.records:
            contacts.setdefault(r.caller, set()).add(r.callee)
            contacts.setdefault(r.callee, set()).add(r.caller)
        return {u: len(c) for u, c in contacts.items()}

    def calls_between(self, t0: float, t1: float) -> List[CallRecord]:
        """Calls whose start time falls in [t0, t1)."""
        lo = bisect_right(self._starts.tolist(), t0 - 1e-12)
        out = []
        for r in self.records[lo:]:
            if r.start >= t1:
                break
            out.append(r)
        return out

    def window(self, t0: float, t1: float) -> "CallTrace":
        """Sub-trace of the calls starting in [t0, t1), shifted to t=0."""
        return CallTrace([
            CallRecord(r.caller, r.callee, r.start - t0, r.duration)
            for r in self.calls_between(t0, t1)
        ])

    def total_call_seconds(self) -> float:
        # Sum the stored durations rather than end-start: the rounded
        # subtraction loses the low bits of a short call at a large
        # timestamp (catastrophic cancellation).
        return float(sum(r.duration for r in self.records))

"""Heavy-tailed social graph models for the Drac comparison.

Drac's chaffing cost and anonymity both derive from the social graph:
each user keeps one chaffed connection per contact, and the anonymity
set at H hops is the H-hop neighbourhood (§4.1.1, §4.1.5).  The paper
uses Twitter and Facebook datasets; we synthesize degree sequences from
a discrete truncated power law calibrated so that the *median* and
*maximum* degrees match the published numbers (DESIGN.md E2/E3), and
optionally materialize a graph for exact H-hop computations on small
instances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

import numpy as np


def _zipf_weights(max_degree: int, alpha: float) -> np.ndarray:
    degrees = np.arange(1, max_degree + 1, dtype=np.float64)
    return degrees ** (-alpha)


def calibrate_alpha(median_degree: int, max_degree: int,
                    tolerance: float = 0.25) -> float:
    """Find the power-law exponent whose truncated Zipf distribution on
    [1, max_degree] has the requested median degree (bisection)."""
    if median_degree < 1 or median_degree > max_degree:
        raise ValueError("median degree must lie in [1, max_degree]")

    def median_for(alpha: float) -> float:
        w = _zipf_weights(max_degree, alpha)
        cdf = np.cumsum(w) / np.sum(w)
        return float(np.searchsorted(cdf, 0.5) + 1)

    lo, hi = 0.01, 6.0
    # median_for is decreasing in alpha.
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        m = median_for(mid)
        if abs(m - median_degree) <= tolerance:
            return mid
        if m > median_degree:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def degree_sequence(n: int, median_degree: int, max_degree: int,
                    rng: Optional[random.Random] = None,
                    alpha: Optional[float] = None,
                    include_max: bool = True) -> np.ndarray:
    """Draw ``n`` degrees from a truncated power law.

    ``include_max=True`` pins the single largest sample to
    ``max_degree`` so the published maxima (e.g. Facebook's 6.2 GB/s
    user) appear at every scale.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or random.Random(0)
    if alpha is None:
        alpha = calibrate_alpha(median_degree, max_degree)
    weights = _zipf_weights(max_degree, alpha)
    cdf = np.cumsum(weights) / np.sum(weights)
    draws = np.array([rng.random() for _ in range(n)])
    degrees = np.searchsorted(cdf, draws) + 1
    if include_max and n > 1:
        degrees[int(np.argmax(degrees))] = max_degree
    return degrees.astype(np.int64)


class SocialGraph:
    """An undirected social graph with H-hop neighbourhood queries.

    For the big datasets the paper only ever needs degree statistics
    (H=1 empirical, H≥2 estimated as ``median_degree**H``, §4.1.5);
    exact neighbourhoods via BFS are practical for the small graphs used
    in tests and examples.
    """

    def __init__(self, adjacency: Dict[int, Set[int]]):
        self.adjacency = adjacency

    @classmethod
    def configuration_model(cls, degrees: Sequence[int],
                            rng: Optional[random.Random] = None
                            ) -> "SocialGraph":
        """Build a simple graph approximating the degree sequence by
        random stub matching (self-loops and multi-edges discarded)."""
        rng = rng or random.Random(0)
        stubs: List[int] = []
        for node, degree in enumerate(degrees):
            stubs.extend([node] * int(degree))
        rng.shuffle(stubs)
        adjacency: Dict[int, Set[int]] = {i: set()
                                          for i in range(len(degrees))}
        for i in range(0, len(stubs) - 1, 2):
            a, b = stubs[i], stubs[i + 1]
            if a != b:
                adjacency[a].add(b)
                adjacency[b].add(a)
        return cls(adjacency)

    @classmethod
    def from_edges(cls, n: int, edges: Sequence) -> "SocialGraph":
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(n)}
        for a, b in edges:
            if a == b:
                raise ValueError("self-loops are not allowed")
            adjacency[a].add(b)
            adjacency[b].add(a)
        return cls(adjacency)

    def __len__(self) -> int:
        return len(self.adjacency)

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def degrees(self) -> np.ndarray:
        return np.array([len(self.adjacency[n])
                         for n in sorted(self.adjacency)])

    def neighbourhood(self, node: int, hops: int) -> Set[int]:
        """All nodes reachable within ``hops`` hops, excluding ``node``
        itself — Drac's anonymity set for that user."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        frontier = {node}
        seen = {node}
        for _ in range(hops):
            next_frontier: Set[int] = set()
            for u in frontier:
                next_frontier |= self.adjacency[u] - seen
            seen |= next_frontier
            frontier = next_frontier
            if not frontier:
                break
        seen.discard(node)
        return seen

    def anonymity_set_sizes(self, hops: int,
                            nodes: Optional[Sequence[int]] = None
                            ) -> np.ndarray:
        nodes = list(self.adjacency) if nodes is None else list(nodes)
        return np.array([len(self.neighbourhood(n, hops)) for n in nodes])


def estimated_anonymity_set(median_degree: int, hops: int) -> float:
    """The paper's estimate for H ≥ 2: anonymity grows as
    ``median_degree ** H`` (§4.1.5: "estimate the sizes for H = 2, 3
    using the median node degrees")."""
    if hops < 1:
        raise ValueError("hops must be at least 1")
    return float(median_degree) ** hops

"""Seeded call-arrival processes for the scenario engine.

The scenario engine (`repro.scenario.engine`) drives its ``poisson``
workload from :func:`poisson_arrival_times`; keeping the process here
— beside the synthetic CDR generator — gives trace-replay workloads
(ROADMAP item 4) the same entry point:
:func:`arrival_times_from_trace` turns any :class:`~repro.workload
.cdr.CallTrace` window into the identical ``List[float]`` shape.

Determinism: arrivals draw from their own ``random.Random`` seeded
with ``seed ^ ARRIVAL_SEED_XOR``, never from the loop or testbed rngs,
so adding or removing arrivals cannot shift fault timelines or jitter
draws elsewhere in a run.
"""

from __future__ import annotations

import random
from typing import List

#: Seed perturbation for the arrival stream (kept off the loop/bed
#: rngs so arrivals cannot shift fault determinism).
ARRIVAL_SEED_XOR = 0x9E3779B9


def poisson_arrival_times(rate_per_s: float, start_s: float,
                          horizon_s: float, seed: int) -> List[float]:
    """Homogeneous Poisson arrival times in ``(start_s, horizon_s)``.

    Exponential inter-arrival gaps at ``rate_per_s``, bit-for-bit
    reproducible for equal seeds.  The first gap is drawn from
    ``start_s`` (no arrival lands exactly at the start).
    """
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    rng = random.Random(seed ^ ARRIVAL_SEED_XOR)
    times: List[float] = []
    t = start_s
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= horizon_s:
            return times
        times.append(t)


def arrival_times_from_trace(trace, t0: float, t1: float,
                             time_scale: float = 1.0) -> List[float]:
    """Call-start times of a :class:`~repro.workload.cdr.CallTrace`
    window, shifted to start at 0 and scaled by ``time_scale`` —
    the replay-ready counterpart of :func:`poisson_arrival_times`."""
    if t1 <= t0:
        raise ValueError("window must have positive extent")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return sorted((record.start - t0) * time_scale
                  for record in trace.calls_between(t0, t1))

"""Synthetic mobile call-trace generator.

Substitutes for the paper's proprietary trace of 370M calls among 10.8M
subscribers (§4.1.2).  The generator is seeded and reproduces the
aggregate statistics the paper reports and its experiments consume:

* **volume** — ~1.1 calls/subscriber/day (370M / 10.8M / 31);
* **diurnal shape** — hourly arrival weights with a pronounced evening
  peak, so provisioning sees realistic load swings;
* **peak duty cycle** — ≈1.6% of users simultaneously on a call at the
  busiest minute (§4.1.6);
* **contact structure** — a heavy-tailed contact graph with median
  degree 12 (Fig. 4's Mobile H=1 anonymity), calls placed only between
  contacts, with per-pair affinity so repeated partners dominate;
* **durations** — lognormal, minutes-scale mean.

Everything is driven by :class:`SyntheticTraceConfig`; the experiments
use the defaults, tests vary them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.cdr import CallRecord, CallTrace
from repro.workload.datasets import MOBILE, DatasetSpec
from repro.workload.social import degree_sequence

#: Hourly call-arrival weights (will be normalized to mean 1.0).
#: Shape: near-silent small hours, business-day plateau, evening peak.
DEFAULT_DIURNAL = (
    0.08, 0.05, 0.04, 0.04, 0.06, 0.15,   # 00-05
    0.35, 0.70, 1.00, 1.20, 1.30, 1.35,   # 06-11
    1.40, 1.30, 1.25, 1.30, 1.45, 1.80,   # 12-17
    2.40, 2.80, 2.60, 1.80, 0.90, 0.40,   # 18-23
)


@dataclass
class SyntheticTraceConfig:
    """Parameters of the synthetic CDR generator."""

    n_users: int = MOBILE.default_sim_users
    days: int = 31
    calls_per_user_day: float = 1.3
    #: Lognormal duration parameters (of the underlying normal), chosen
    #: for a ~110 s median / ~210 s mean call.
    duration_log_mean: float = math.log(110.0)
    duration_log_std: float = 1.14
    min_duration: float = 1.0
    max_duration: float = 7200.0
    median_degree: int = MOBILE.median_degree
    max_degree: int = 150
    diurnal: Sequence[float] = field(default_factory=lambda:
                                     DEFAULT_DIURNAL)
    #: Relative call volume on Saturdays/Sundays (days 5 and 6 of each
    #: week); mobile traces show noticeably lighter weekend traffic.
    weekend_factor: float = 0.8
    seed: int = 20150817

    def __post_init__(self):
        if self.n_users < 2:
            raise ValueError("need at least two users")
        if self.days < 1:
            raise ValueError("need at least one day")
        if len(self.diurnal) != 24:
            raise ValueError("diurnal profile needs 24 hourly weights")
        if self.max_degree >= self.n_users:
            raise ValueError("max_degree must be below n_users")
        if self.weekend_factor <= 0:
            raise ValueError("weekend factor must be positive")

    @classmethod
    def for_dataset(cls, spec: DatasetSpec, **overrides
                    ) -> "SyntheticTraceConfig":
        params = dict(
            n_users=spec.default_sim_users,
            median_degree=spec.median_degree,
            max_degree=min(spec.max_degree, spec.default_sim_users - 1),
        )
        params.update(overrides)
        return cls(**params)


def _build_contact_lists(cfg: SyntheticTraceConfig,
                         rng: random.Random) -> List[np.ndarray]:
    """A heavy-tailed contact graph as per-user contact arrays."""
    degrees = degree_sequence(cfg.n_users, cfg.median_degree,
                              cfg.max_degree, rng=rng)
    # Stub matching (configuration model), deduplicated per user.
    stubs: List[int] = []
    for user, degree in enumerate(degrees):
        stubs.extend([user] * int(degree))
    rng.shuffle(stubs)
    contacts: List[set] = [set() for _ in range(cfg.n_users)]
    for i in range(0, len(stubs) - 1, 2):
        a, b = stubs[i], stubs[i + 1]
        if a != b:
            contacts[a].add(b)
            contacts[b].add(a)
    # Guarantee every user has at least one contact so they can call.
    for user in range(cfg.n_users):
        if not contacts[user]:
            peer = rng.randrange(cfg.n_users - 1)
            if peer >= user:
                peer += 1
            contacts[user].add(peer)
            contacts[peer].add(user)
    return [np.array(sorted(c), dtype=np.int64) for c in contacts]


def generate_trace(cfg: Optional[SyntheticTraceConfig] = None
                   ) -> CallTrace:
    """Generate a synthetic call trace.

    Arrival process: per hour-of-day, the expected number of calls is
    ``n_users · calls_per_user_day · w(hour)/24`` with ``w`` the
    normalized diurnal weight; actual counts are Poisson.  Callers are
    drawn with probability proportional to their contact degree (social
    hubs call more); the callee is a uniform contact of the caller, with
    a persistent per-user favourite contact chosen half the time
    (strong ties).
    """
    cfg = cfg or SyntheticTraceConfig()
    rng = random.Random(cfg.seed)
    np_rng = np.random.default_rng(cfg.seed)

    contacts = _build_contact_lists(cfg, rng)
    degrees = np.array([len(c) for c in contacts], dtype=np.float64)
    caller_weights = degrees / degrees.sum()
    favourites = np.array([int(c[0]) for c in contacts], dtype=np.int64)

    weights = np.array(cfg.diurnal, dtype=np.float64)
    weights = weights / weights.mean()

    records: List[CallRecord] = []
    for day in range(cfg.days):
        day_factor = cfg.weekend_factor if day % 7 in (5, 6) else 1.0
        for hour in range(24):
            expected = (cfg.n_users * cfg.calls_per_user_day / 24.0
                        * weights[hour] * day_factor)
            n_calls = int(np_rng.poisson(expected))
            if n_calls == 0:
                continue
            callers = np_rng.choice(cfg.n_users, size=n_calls,
                                    p=caller_weights)
            offsets = np_rng.uniform(0.0, 3600.0, size=n_calls)
            durations = np.exp(np_rng.normal(cfg.duration_log_mean,
                                             cfg.duration_log_std,
                                             size=n_calls))
            durations = np.clip(durations, cfg.min_duration,
                                cfg.max_duration)
            use_favourite = np_rng.random(n_calls) < 0.5
            base = (day * 24 + hour) * 3600.0
            for i in range(n_calls):
                caller = int(callers[i])
                if use_favourite[i]:
                    callee = int(favourites[caller])
                else:
                    clist = contacts[caller]
                    callee = int(clist[np_rng.integers(len(clist))])
                if callee == caller:  # defensive; cannot happen by
                    continue          # construction
                records.append(CallRecord(
                    caller=caller,
                    callee=callee,
                    start=base + float(offsets[i]),
                    duration=float(durations[i]),
                ))
    return CallTrace(_drop_overlapping(records))


def _drop_overlapping(records: List[CallRecord]) -> List[CallRecord]:
    """Enforce the physical constraint that a phone user participates
    in one call at a time: process calls in start order and drop any
    whose caller or callee is still on an earlier call."""
    busy_until: dict = {}
    kept: List[CallRecord] = []
    for record in sorted(records, key=lambda r: r.start):
        if busy_until.get(record.caller, -1.0) > record.start:
            continue
        if busy_until.get(record.callee, -1.0) > record.start:
            continue
        busy_until[record.caller] = record.end
        busy_until[record.callee] = record.end
        kept.append(record)
    return kept

"""The real-network transport plane (``execution="asyncio"``).

This package is the ``"udp"`` side of the transport seam
(:mod:`repro.core.transport`, DESIGN.md §14): the same
round-synchronous Herd protocol the simulator engines run, but with
every cell framed by :func:`repro.core.wire.encode_cell_frame` and
carried as a real UDP datagram over loopback between per-node
``asyncio`` endpoints.

* :mod:`repro.net.introducer` — the tahoe-lafs-style introducer:
  nodes ANNOUNCE their UDP address at startup and peers fetch the
  resulting DIRECTORY, all over the same loopback datagrams.
* :mod:`repro.net.transport` — :class:`~repro.net.transport
  .UdpFabric`, the :class:`~repro.core.transport.CellTransport` whose
  :meth:`flush_round` physically transmits the round, waits for every
  datagram to land (retransmitting losses), and bridges the received
  traffic into the public tap protocol (:mod:`repro.netsim.taps`) so
  wiretap observations, herdscope metrics, and report rows come out
  identically to the simulator planes.
* :mod:`repro.net.procs` — the ``--processes`` variant: receive
  endpoints hosted in a separate worker process so datagrams really
  cross a process boundary.

Nothing in :mod:`repro.core` or :mod:`repro.simulation` imports this
package; the only entry point is
:func:`repro.execution.create_wire_fabric`.
"""

from repro.net.introducer import Introducer
from repro.net.transport import UdpFabric

__all__ = ["Introducer", "UdpFabric"]

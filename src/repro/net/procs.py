"""The ``--processes`` variant of the UDP plane: receive endpoints
hosted in a separate worker process.

In-process loopback datagrams already cross the kernel, but sender
and receiver still share one Python interpreter and one GIL.  With
``processes=True`` the :class:`~repro.net.transport.UdpFabric` forks
one worker (the same ``fork`` start method as
:mod:`repro.netsim.shards`) that owns its own asyncio loop, all
receive endpoints, and the :class:`~repro.net.transport
.RoundCollector`; every cell datagram then genuinely travels between
two processes.

The split of channels:

* **UDP** carries everything a real deployment would put on the
  wire: cell frames (main → worker sockets) and introducer
  announcements (worker → the introducer living on the fabric's
  loop).
* **A pipe** carries what a real deployment would not need: the
  per-round flow-control handshake.  The fabric sends ``("expect",
  round, {run: count})`` then ``("wait",)``; the worker runs its loop
  until the collector completes (or the barrier timeout fires) and
  replies ``("round", round, table_rows, missing)``.  A non-empty
  ``missing`` list makes the fabric retransmit exactly those
  ``(run, seq)`` frames and wait again — the same bounded recovery
  the in-process barrier performs.

The worker's command loop is synchronous (blocking pipe reads happen
*between* ``run_until_complete`` calls, never inside a coroutine —
herdlint HL102); datagrams arriving while no command is being served
simply sit in the kernel socket buffers until the next ``wait`` runs
the loop.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from typing import Dict, List, Tuple

#: Worker-side safety timeout (seconds) for one ``wait`` command when
#: the fabric passes none.
DEFAULT_WAIT_TIMEOUT_S = 0.25


class WorkerHandle:
    """The fabric's end of the worker: lifecycle plus the per-round
    control protocol.

    The receive side is *async*: the fabric's loop also hosts the
    introducer, which must keep answering the worker's UDP
    announcements while the fabric waits on the pipe — so waiting is
    a poll-and-yield loop, never a blocking ``Connection.recv``
    inside a coroutine."""

    def __init__(self, *, introducer_address: Tuple[str, int],
                 host: str = "127.0.0.1",
                 barrier_timeout: float = DEFAULT_WAIT_TIMEOUT_S):
        self.introducer_address = introducer_address
        self.host = host
        self.barrier_timeout = barrier_timeout
        self._conn = None
        self._process = None
        #: Receive-side counters mirrored back at :meth:`close`
        #: (merged into ``UdpFabric.net_report``).
        self.stats: Dict[str, object] = {}

    def start(self) -> None:
        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main,
            args=(child, self.introducer_address, self.host,
                  self.barrier_timeout),
            daemon=True)
        self._process.start()
        child.close()

    async def _recv(self):
        """Receive one pipe message without stalling the loop: the
        introducer (and any in-flight datagram work) keeps running
        while the worker prepares its reply."""
        conn = self._conn
        while not conn.poll():
            await asyncio.sleep(0.001)
        return conn.recv()

    async def open_endpoints(self,
                             names: List[str]) -> Dict[str, int]:
        """Have the worker bind one receive socket per name and
        announce each to the introducer; returns name → port."""
        self._conn.send(("open", list(names)))
        kind, ports = await self._recv()
        if kind != "ports":
            raise RuntimeError(
                f"worker protocol error: expected ports, got "
                f"{kind!r}")
        return ports

    def expect(self, round_index: int,
               expected: Dict[int, int]) -> None:
        """Arm the worker's collector for one round."""
        self._conn.send(("expect", round_index, expected))
        self._conn.send(("wait",))

    async def wait_round(self) -> Tuple[
            List[Tuple[int, str, str, int, int]],
            List[Tuple[int, int]]]:
        """Collect one barrier attempt's result: the run table so
        far and the still-missing ``(run, seq)`` list (empty =
        round complete)."""
        kind, _round_index, table, missing = await self._recv()
        if kind != "round":
            raise RuntimeError(
                f"worker protocol error: expected round, got "
                f"{kind!r}")
        if missing:
            # Another attempt: the fabric retransmits, then waits.
            self._conn.send(("wait",))
        return table, missing

    def close(self) -> None:
        if self._conn is None:
            return
        try:
            self._conn.send(("close",))
            kind, stats = self._conn.recv()
            if kind == "stats":
                self.stats = stats
        except (EOFError, BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._conn = None
        if self._process is not None:
            self._process.join(timeout=5)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5)
            self._process = None


def _worker_main(conn, introducer_address: Tuple[str, int],
                 host: str, barrier_timeout: float) -> None:
    """Worker entry point: a synchronous command loop around a
    private asyncio loop that owns every receive endpoint."""
    # Imported here (post-fork) to keep the module importable
    # without the transport machinery.
    from repro.net import introducer as intro
    from repro.net.transport import RoundCollector, _NodeProtocol

    loop = asyncio.new_event_loop()
    collector = RoundCollector()
    endpoints: Dict[str, _NodeProtocol] = {}
    seq_state = [0]
    round_index = [-1]

    def next_seq() -> int:
        seq_state[0] += 1
        return seq_state[0]

    async def open_endpoints(names: List[str]) -> Dict[str, int]:
        ports: Dict[str, int] = {}
        for name in names:
            _, protocol = await loop.create_datagram_endpoint(
                lambda: _NodeProtocol(name, collector),
                local_addr=(host, 0))
            port = protocol.transport.get_extra_info("sockname")[1]
            await intro.announce(introducer_address, next_seq(),
                                 name, host, port)
            endpoints[name] = protocol
            ports[name] = port
        return ports

    async def wait_complete() -> None:
        if collector.complete:
            return
        waiter = loop.create_future()
        collector.waiter = waiter
        try:
            await asyncio.wait_for(waiter, barrier_timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            collector.waiter = None

    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "open":
                ports = loop.run_until_complete(
                    open_endpoints(message[1]))
                conn.send(("ports", ports))
            elif op == "expect":
                round_index[0] = message[1]
                collector.arm(message[1], message[2])
            elif op == "wait":
                loop.run_until_complete(wait_complete())
                conn.send(("round", round_index[0],
                           collector.table_rows(),
                           collector.missing()))
            elif op == "close":
                conn.send(("stats", {
                    "worker_datagrams_received": sum(
                        ep.datagrams_received
                        for ep in endpoints.values()),
                    "worker_duplicates": collector.duplicates,
                    "worker_stray": collector.stray,
                    "worker_malformed": collector.malformed,
                }))
                break
            else:
                raise RuntimeError(
                    f"unknown worker command {op!r}")
    finally:
        for protocol in endpoints.values():
            if protocol.transport is not None:
                protocol.transport.close()
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()
        conn.close()

"""UdpFabric: the wire plane carried by real loopback datagrams.

This is the ``"udp"`` implementation of the transport seam
(:mod:`repro.core.transport`): the round engine drives it with
exactly the :class:`~repro.simulation.roundsync.WireFabric` calls —
``emit`` / ``emit_repeated`` while computing a round, one
``flush_round`` at the barrier — but here every queued cell is framed
by :func:`repro.core.wire.encode_cell_frame` and physically
transmitted as a UDP datagram from its source node's asyncio endpoint
to its destination node's endpoint.  Addresses come from the
:mod:`repro.net.introducer`: every endpoint announces itself on
creation and the fabric resolves destinations with a real GETDIR
round-trip.

**The socket bridge.**  Taps must observe *received* traffic, not the
send queue.  Each receiving endpoint decodes its datagrams into
:class:`~repro.core.wire.CellFrame` records and hands them to a
:class:`RoundCollector`; once the round barrier completes, the
collector rebuilds the round's run table — rows ordered by the
``run`` coordinate each frame carries, one row per emission run, cell
counts from the distinct ``seq`` values that actually arrived — and
the fabric offers it to every tap through
:func:`~repro.netsim.taps.offer_round_runs` at the round's *virtual*
time (``round_index * interval``).  That is byte-for-byte the feeding
sequence the ``batch-v2`` plane performs, which is what makes wiretap
observations, herdscope metrics, and report rows identical across the
simulator and the sockets (DESIGN.md §14; gated by
``tests/test_net_equivalence.py``).

**The round barrier.**  UDP is lossy even on loopback (socket buffers
overflow).  ``flush_round`` therefore waits until every sent
``(run, seq)`` coordinate has been received, retransmitting the
missing frames on timeout, bounded by ``max_attempts``; a round that
cannot complete raises rather than silently diverging from the
simulator.  Loss, retransmissions, duplicates, and wall-clock send
time are recorded in :meth:`UdpFabric.net_report` — a host side
channel, never part of any determinism surface.

With ``processes=True`` the receive endpoints (and the collector)
live in a separate worker process (:mod:`repro.net.procs`), so every
datagram really crosses a process boundary; the per-round tables come
back over a pipe and feed the same taps in the same order.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.core.transport import CellTransport
from repro.core.wire import CellFrame, encode_cell_frame, \
    WireFormatError, decode_cell_frame
from repro.net import introducer as intro
from repro.netsim.observer import LinkObserver
from repro.netsim.packet import IP_UDP_HEADER_BYTES
from repro.netsim.taps import offer_round_runs
from repro.obs.prof.perfclock import perf_now

#: Per-attempt round-barrier timeout (seconds of host time) and the
#: attempt bound before a round is declared lost.  Loopback rarely
#: needs more than one retransmission; the bound exists so a wedged
#: socket fails loudly instead of hanging CI.
DEFAULT_BARRIER_TIMEOUT_S = 0.25
DEFAULT_MAX_ATTEMPTS = 40

#: Datagrams sent between cooperative yields while flushing a round —
#: the sender lets the receiving endpoints drain their socket buffers
#: instead of overflowing them in one burst.
SEND_YIELD_EVERY = 64


class RoundCollector:
    """Receive-side state of one round: which ``(run, seq)``
    coordinates have landed, and the run table they rebuild.

    Armed once per round with the expected per-run cell counts (the
    sender's flow-control knowledge); everything else — endpoints,
    sizes, counts — is taken from the decoded frames themselves, so
    the tap bridge genuinely describes received traffic.
    """

    def __init__(self):
        self.round_index = -1
        self._expected: Dict[int, int] = {}
        #: run → ``[src, dst, size, seq_set]`` rebuilt from frames.
        self._rows: Dict[int, list] = {}
        self._received = 0
        self._total = 0
        self.duplicates = 0
        self.stray = 0
        self.malformed = 0
        #: Future the owning loop awaits on; resolved by
        #: :meth:`add` when the round completes.
        self.waiter: Optional["asyncio.Future"] = None

    def arm(self, round_index: int,
            expected: Dict[int, int]) -> None:
        """Reset for a new round expecting ``expected[run]`` cells
        per emission run."""
        self.round_index = round_index
        self._expected = dict(expected)
        self._rows = {}
        self._received = 0
        self._total = sum(self._expected.values())
        self.waiter = None

    @property
    def complete(self) -> bool:
        return self._received >= self._total

    def ingest(self, data: bytes) -> None:
        """Decode one received datagram and account it."""
        try:
            frame = decode_cell_frame(data)
        except WireFormatError:
            self.malformed += 1
            return
        self.add(frame)

    def add(self, frame: CellFrame) -> None:
        expected = self._expected.get(frame.run)
        if frame.round_index != self.round_index or \
                expected is None or frame.seq >= expected:
            self.stray += 1
            return
        row = self._rows.get(frame.run)
        if row is None:
            row = [frame.src, frame.dst,
                   len(frame.payload) + IP_UDP_HEADER_BYTES, set()]
            self._rows[frame.run] = row
        seqs = row[3]
        if frame.seq in seqs:
            self.duplicates += 1
            return
        seqs.add(frame.seq)
        self._received += 1
        if self._received >= self._total:
            waiter = self.waiter
            if waiter is not None and not waiter.done():
                waiter.set_result(None)

    def missing(self) -> List[Tuple[int, int]]:
        """Every ``(run, seq)`` not yet received, in canonical
        order — the sender's retransmission list."""
        out: List[Tuple[int, int]] = []
        for run in sorted(self._expected):
            row = self._rows.get(run)
            have = row[3] if row is not None else ()
            for seq in range(self._expected[run]):
                if seq not in have:
                    out.append((run, seq))
        return out

    def table_rows(self) -> List[Tuple[int, str, str, int, int]]:
        """The rebuilt run table as ``(run, src, dst, size, count)``
        rows in run order — what crosses the worker pipe in
        ``--processes`` mode and what :meth:`UdpFabric.flush_round`
        feeds the taps from."""
        return [(run, row[0], row[1], row[2], len(row[3]))
                for run, row in sorted(self._rows.items())]


class _NodeProtocol(asyncio.DatagramProtocol):
    """One node's receive endpoint: datagrams go straight to the
    shared collector."""

    def __init__(self, name: str, collector: RoundCollector):
        self.name = name
        self.collector = collector
        self.transport: Optional[
            asyncio.DatagramTransport] = None
        self.datagrams_received = 0

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.datagrams_received += 1
        self.collector.ingest(data)


class UdpFabric(CellTransport):
    """A zone's wire plane over real loopback UDP datagrams.

    Drop-in for :class:`~repro.simulation.roundsync.WireFabric` at
    the :class:`~repro.core.transport.CellTransport` seam:
    ``zone.attach_wire()`` on the ``asyncio`` plane assigns one of
    these, and every ``LiveZone.step`` flushes the round through real
    sockets.  ``seed`` is accepted for constructor symmetry; the
    fabric draws no randomness (retransmission is deterministic, and
    the only nondeterminism — host scheduling — is confined to the
    :meth:`net_report` side channel).
    """

    execution = "asyncio"
    wire_mode = "socket"
    transport = "udp"
    shards = 1

    def __init__(self, *, seed: int = 0,
                 interval: float = 0.02,
                 observer: Optional[LinkObserver] = None,
                 processes: bool = False,
                 host: str = "127.0.0.1",
                 barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        self.seed = seed
        self.interval = interval
        self.processes = bool(processes)
        self.host = host
        self.barrier_timeout = barrier_timeout
        self.max_attempts = max_attempts
        self.observer = observer if observer is not None \
            else LinkObserver()
        self.taps: List = [self.observer]
        self._pending: Dict[Tuple[str, str],
                            List[Tuple[bytes, str, int]]] = {}
        self.rounds_flushed = 0
        self.cells_carried = 0
        self.prof = None
        # Cumulative per-link wire totals ([cells, bytes] per
        # directed key), published by finalize() like the batch-v2
        # plane's unsharded merge.
        self._link_totals: Dict[Tuple[str, str], List[int]] = {}
        self._segments = 0
        self._finalized: Optional[Dict[str, object]] = None
        # -- socket state (lazy: first flush starts the network) --
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.introducer: Optional[intro.Introducer] = None
        self._endpoints: Dict[str, _NodeProtocol] = {}
        self._collector = RoundCollector()
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._seq = 0
        self._worker = None  # procs.WorkerHandle in --processes mode
        self._sender: Optional[_NodeProtocol] = None
        # -- the host side channel (never in determinism surfaces) --
        self._datagrams_sent = 0
        self._retransmits = 0
        self._barrier_attempts = 0
        self._wall_send_s = 0.0

    # -- the CellTransport surface ---------------------------------------------

    def emit(self, src: str, dst: str, payload: bytes,
             kind: str = "data") -> None:
        pending = self._pending
        entry = pending.get((src, dst))
        if entry is None:
            pending[(src, dst)] = [(payload, kind, 1)]
        else:
            entry.append((payload, kind, 1))

    def emit_repeated(self, src: str, dst: str, payload: bytes,
                      n: int, kind: str = "chaff") -> None:
        if n < 0:
            raise ValueError("cannot emit a negative cell count")
        if n:
            pending = self._pending
            entry = pending.get((src, dst))
            if entry is None:
                pending[(src, dst)] = [(payload, kind, n)]
            else:
                entry.append((payload, kind, n))

    def add_tap(self, tap) -> None:
        self.taps.append(tap)

    def set_profiler(self, prof) -> None:
        self.prof = prof

    @property
    def events_processed(self) -> int:
        """The socket plane runs no virtual-event loop; its cost
        lives in :meth:`net_report`, not in heap events."""
        return 0

    def flush_round(self, round_index: int) -> None:
        """Transmit the round for real, wait for every datagram to
        land (retransmitting losses), and bridge the received run
        table into the taps at the round's virtual time."""
        prof = self.prof
        if prof is not None:
            prof.begin("deliver")
        # Flatten the queue into the canonical run table: one row per
        # emission run, rows in first-emission order — the global row
        # index is the frame's ``run`` coordinate.
        rows: List[Tuple[Tuple[str, str], bytes, str, int]] = []
        for key, runs in self._pending.items():
            for payload, kind, count in runs:
                rows.append((key, payload, kind, count))
        self._pending.clear()
        t = round_index * self.interval
        if rows:
            started = perf_now()
            self._ensure_started()
            names = sorted({name for (src, dst), _, _, _ in rows
                            for name in (src, dst)})
            self._ensure_endpoints(names)
            table = self._run_sync(self._transmit_round(
                round_index, rows))
            self._wall_send_s += perf_now() - started
        else:
            table = []
        keys = [(src, dst) for _, src, dst, _, _ in table]
        sizes = [size for _, _, _, size, _ in table]
        counts = [count for _, _, _, _, count in table]
        round_cells = 0
        totals = self._link_totals
        for key, size, count in zip(keys, sizes, counts):
            entry = totals.get(key)
            if entry is None:
                totals[key] = [count, size * count]
            else:
                entry[0] += count
                entry[1] += size * count
            round_cells += count
        self._segments += len(keys)
        if prof is not None:
            prof.begin("adversary-observe")
        for tap in self.taps:
            offer_round_runs(tap, t, keys, sizes, counts)
        if prof is not None:
            prof.end(cells=round_cells)
        self.cells_carried += round_cells
        self.rounds_flushed += 1
        if prof is not None:
            prof.end(cells=round_cells)

    def finalize(self) -> Optional[Dict[str, object]]:
        """Tear the network down (sockets, introducer, worker) and
        publish the merged wire totals; idempotent."""
        if self._finalized is not None:
            return self._finalized
        self._shutdown()
        cells = n_bytes = 0
        link_stats: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for key, (c, b) in self._link_totals.items():
            link_stats[key] = (c, b)
            cells += c
            n_bytes += b
        self._finalized = {
            "cells": cells,
            "bytes": n_bytes,
            "segments": self._segments,
            "link_stats": link_stats,
        }
        self._link_totals = {}
        return self._finalized

    def net_report(self) -> Dict[str, object]:
        """The host-network side channel: real-socket accounting and
        wall-clock latency.  Deliberately excluded from metrics,
        traces, observations, and every determinism key — two runs of
        the same seed agree on everything *except* this dict."""
        received = sum(ep.datagrams_received
                       for ep in self._endpoints.values())
        report: Dict[str, object] = {
            "transport": "udp",
            "processes": self.processes,
            "endpoints": len(self._endpoints),
            "datagrams_sent": self._datagrams_sent,
            "datagrams_received": received,
            "retransmits": self._retransmits,
            "barrier_attempts": self._barrier_attempts,
            "duplicates": self._collector.duplicates,
            "stray": self._collector.stray,
            "malformed": self._collector.malformed,
            "wall_send_seconds": self._wall_send_s,
        }
        if self._worker is not None:
            report.update(self._worker.stats)
        if self.introducer is not None:
            report["announcements"] = self.introducer.announcements
            report["directory_fetches"] = \
                self.introducer.directory_fetches
        return report

    # -- socket plumbing -------------------------------------------------------

    def _run_sync(self, coro):
        """Drive one coroutine to completion on the fabric's private
        loop (the synchronous facade over the async internals)."""
        return self._loop.run_until_complete(coro)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _ensure_started(self) -> None:
        if self._loop is not None:
            return
        self._loop = asyncio.new_event_loop()
        self.introducer = intro.Introducer(host=self.host)
        self._run_sync(self.introducer.start())
        if self.processes:
            from repro.net.procs import WorkerHandle
            self._worker = WorkerHandle(
                introducer_address=self.introducer.address,
                host=self.host,
                barrier_timeout=self.barrier_timeout)
            self._worker.start()
            self._sender = self._run_sync(
                self._open_endpoint("sender"))

    def _ensure_endpoints(self, names: List[str]) -> None:
        wanted = [n for n in names if n not in self._endpoints]
        if not wanted:
            return
        if self._worker is not None:
            self._run_sync(self._worker.open_endpoints(wanted))
            # Track names so net_report/endpoint counting stays
            # meaningful; receive counters live in the worker.
            for name in wanted:
                self._endpoints[name] = _NodeProtocol(
                    name, self._collector)
        else:
            self._run_sync(self._open_many(wanted))
        self._addresses = {}  # force a directory refresh

    async def _open_many(self, names: List[str]) -> None:
        for name in names:
            protocol = await self._open_endpoint(name)
            await intro.announce(
                self.introducer.address, self._next_seq(), name,
                self.host,
                protocol.transport.get_extra_info("sockname")[1])
            self._endpoints[name] = protocol

    async def _open_endpoint(self, name: str) -> _NodeProtocol:
        loop = asyncio.get_running_loop()
        _, protocol = await loop.create_datagram_endpoint(
            lambda: _NodeProtocol(name, self._collector),
            local_addr=(self.host, 0))
        return protocol

    async def _resolve(self, names: List[str]
                       ) -> Dict[str, Tuple[str, int]]:
        """Resolve node addresses with a real GETDIR round-trip,
        re-fetching (bounded) until every name has announced."""
        for _ in range(intro.DEFAULT_ATTEMPTS):
            missing = [n for n in names
                       if n not in self._addresses]
            if not missing:
                return self._addresses
            self._addresses = await intro.fetch_directory(
                self.introducer.address, self._next_seq())
        missing = [n for n in names if n not in self._addresses]
        raise intro.IntroducerUnreachable(
            f"nodes never announced: {', '.join(missing)}")

    async def _transmit_round(
            self, round_index: int,
            rows: List[Tuple[Tuple[str, str], bytes, str, int]],
    ) -> List[Tuple[int, str, str, int, int]]:
        """Send every cell of the round as a datagram, run the
        completion barrier (with retransmission), and return the
        received run table."""
        if self._worker is not None:
            return await self._transmit_round_procs(round_index,
                                                    rows)
        collector = self._collector
        collector.arm(round_index,
                      {run: count
                       for run, (_, _, _, count) in enumerate(rows)})
        directory = await self._resolve(
            sorted({dst for (_, dst), _, _, _ in rows}))
        await self._send_frames(
            round_index, rows,
            ((run, seq) for run, (_, _, _, count) in enumerate(rows)
             for seq in range(count)),
            directory)
        loop = asyncio.get_running_loop()
        for _ in range(self.max_attempts):
            if collector.complete:
                break
            self._barrier_attempts += 1
            waiter = loop.create_future()
            collector.waiter = waiter
            try:
                await asyncio.wait_for(waiter,
                                       self.barrier_timeout)
            except asyncio.TimeoutError:
                missing = collector.missing()
                self._retransmits += len(missing)
                await self._send_frames(round_index, rows,
                                        missing, directory)
            finally:
                collector.waiter = None
        if not collector.complete:
            raise RuntimeError(
                f"round {round_index}: "
                f"{len(collector.missing())} datagrams still "
                f"missing after {self.max_attempts} barrier "
                f"attempts")
        return collector.table_rows()

    async def _send_frames(self, round_index, rows, coordinates,
                           directory) -> None:
        """Encode and transmit the given ``(run, seq)`` coordinates,
        yielding to the loop periodically so receivers drain their
        socket buffers."""
        sent = 0
        for run, seq in coordinates:
            (src, dst), payload, kind, _ = rows[run]
            data = encode_cell_frame(CellFrame(
                round_index=round_index, run=run, seq=seq,
                kind=kind, src=src, dst=dst, payload=payload))
            sender = self._sender if self._sender is not None \
                else self._endpoints[src]
            sender.transport.sendto(data, directory[dst])
            self._datagrams_sent += 1
            sent += 1
            if sent % SEND_YIELD_EVERY == 0:
                await asyncio.sleep(0)

    async def _transmit_round_procs(
            self, round_index: int,
            rows: List[Tuple[Tuple[str, str], bytes, str, int]],
    ) -> List[Tuple[int, str, str, int, int]]:
        """The ``--processes`` variant: the collector lives in the
        worker; expected counts, barrier waits, and the rebuilt table
        travel over the control pipe while the datagrams travel over
        the real sockets."""
        worker = self._worker
        expected = {run: count
                    for run, (_, _, _, count) in enumerate(rows)}
        directory = await self._resolve(
            sorted({dst for (_, dst), _, _, _ in rows}))
        worker.expect(round_index, expected)
        await self._send_frames(
            round_index, rows,
            ((run, seq) for run, count in expected.items()
             for seq in range(count)),
            directory)
        for _ in range(self.max_attempts):
            self._barrier_attempts += 1
            table, missing = await worker.wait_round()
            if not missing:
                return table
            self._retransmits += len(missing)
            await self._send_frames(round_index, rows, missing,
                                    directory)
        raise RuntimeError(
            f"round {round_index}: {len(missing)} datagrams still "
            f"missing after {self.max_attempts} barrier attempts")

    def _shutdown(self) -> None:
        if self._loop is None:
            return
        if self._worker is not None:
            self._worker.close()
        for protocol in self._endpoints.values():
            if protocol.transport is not None:
                protocol.transport.close()
        if self._sender is not None and \
                self._sender.transport is not None:
            self._sender.transport.close()
        if self.introducer is not None:
            self.introducer.close()
        # One loop turn so the transport close callbacks run.
        self._run_sync(asyncio.sleep(0))
        self._loop.close()
        self._loop = None

    def __repr__(self) -> str:
        return (f"UdpFabric({self.rounds_flushed} rounds, "
                f"{self.cells_carried} cells, "
                f"{self._datagrams_sent} datagrams, "
                f"processes={self.processes})")

"""The introducer: directory bootstrap over real UDP datagrams.

Tahoe-LAFS bootstraps its grid with an *introducer*: every node
announces ``(name, furl)`` to one well-known endpoint and subscribers
fetch the accumulated announcements.  The real-network plane
(DESIGN.md §14) uses the same shape for address discovery — the
simulator's :class:`~repro.core.directory.ZoneDirectory` still owns
the *protocol* directory (SP membership, rates, certificates); the
introducer only maps node names to UDP addresses, which is exactly
the piece that does not exist until there are real sockets.

Four message types, carried in single datagrams with their own magic
(``HI``) so a cell frame can never be confused for a control message
(and vice versa — both decoders reject the other's magic with a typed
:class:`~repro.core.wire.WireFormatError`):

* ``ANNOUNCE(seq, name, host, port)`` — a node publishes its receive
  address; re-announcing a name overwrites (last write wins, like a
  re-started tahoe node).
* ``ACK(seq, size)`` — the introducer's receipt, echoing the
  announcement's sequence number plus the directory size, so an
  announcer can retransmit lost announcements idempotently.
* ``GETDIR(seq)`` — fetch the directory.
* ``DIRECTORY(seq, {name: (host, port)})`` — the reply, echoing the
  request's sequence number.

Everything is datagram-lossy and idempotent: clients retransmit on an
:func:`asyncio.wait_for` timeout, bounded by ``attempts``.  The
introducer itself is pure asyncio (no threads, no blocking calls —
herdlint HL102 gates this package) and never reads the host clock.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.core.wire import (WireError, WireFormatError, _put_bytes,
                             _Reader, _U32)

INTRO_MAGIC = b"HI"
INTRO_VERSION = 1

#: Introducer message kinds, fixed codes.  This is a transport-plane
#: namespace, deliberately separate from ``core.wire.MESSAGE_TYPES``:
#: the HL006 dispatch-exhaustiveness contract covers protocol
#: messages every role must handle, while these never leave the
#: introducer round-trip.
INTRO_TYPES = ("announce", "ack", "getdir", "directory")
_INTRO_CODE = {name: i for i, name in enumerate(INTRO_TYPES)}
_INTRO_NAME = {i: name for i, name in enumerate(INTRO_TYPES)}

#: Default per-attempt reply timeout (seconds) and attempt bound for
#: the loopback deployments this plane targets.
DEFAULT_TIMEOUT_S = 0.5
DEFAULT_ATTEMPTS = 10


def _encode_header(kind: str, seq: int) -> List[bytes]:
    return [INTRO_MAGIC, bytes([INTRO_VERSION, _INTRO_CODE[kind]]),
            _U32.pack(seq)]


def _put_str(out: List[bytes], text: str) -> None:
    _put_bytes(out, text.encode("utf-8"))


def encode_announce(seq: int, name: str, host: str,
                    port: int) -> bytes:
    out = _encode_header("announce", seq)
    _put_str(out, name)
    _put_str(out, host)
    out.append(_U32.pack(port))
    return b"".join(out)


def encode_ack(seq: int, size: int) -> bytes:
    out = _encode_header("ack", seq)
    out.append(_U32.pack(size))
    return b"".join(out)


def encode_getdir(seq: int) -> bytes:
    return b"".join(_encode_header("getdir", seq))


def encode_directory(seq: int,
                     entries: Dict[str, Tuple[str, int]]) -> bytes:
    out = _encode_header("directory", seq)
    out.append(_U32.pack(len(entries)))
    for name, (host, port) in entries.items():
        _put_str(out, name)
        _put_str(out, host)
        out.append(_U32.pack(port))
    return b"".join(out)


def decode_intro(data: bytes) -> Tuple[str, int, tuple]:
    """Parse one introducer datagram into ``(kind, seq, body)``.

    ``body`` by kind: ``announce`` → ``(name, host, port)``; ``ack``
    → ``(size,)``; ``getdir`` → ``()``; ``directory`` →
    ``({name: (host, port)},)``.  Any malformation — wrong magic,
    truncation, trailing bytes — raises :class:`WireFormatError`.
    """
    reader = _Reader(data)
    try:
        magic = reader.take(2)
        if magic != INTRO_MAGIC:
            raise WireFormatError(
                f"bad introducer magic {magic.hex() or '(empty)'}")
        version, code = reader.take(2)
        if version != INTRO_VERSION:
            raise WireFormatError(
                f"unsupported introducer version {version}")
        kind = _INTRO_NAME.get(code)
        if kind is None:
            raise WireFormatError(
                f"unknown introducer message code 0x{code:02x}")
        seq = _U32.unpack(reader.take(4))[0]
        if kind == "announce":
            name = reader.field().decode("utf-8")
            host = reader.field().decode("utf-8")
            port = _U32.unpack(reader.take(4))[0]
            body: tuple = (name, host, port)
        elif kind == "ack":
            body = (_U32.unpack(reader.take(4))[0],)
        elif kind == "getdir":
            body = ()
        else:
            n = _U32.unpack(reader.take(4))[0]
            entries: Dict[str, Tuple[str, int]] = {}
            for _ in range(n):
                name = reader.field().decode("utf-8")
                host = reader.field().decode("utf-8")
                port = _U32.unpack(reader.take(4))[0]
                entries[name] = (host, port)
            body = (entries,)
        reader.finish()
    except WireFormatError:
        raise
    except WireError as exc:
        raise WireFormatError(str(exc)) from exc
    except UnicodeDecodeError as exc:
        raise WireFormatError(
            f"introducer name field is not UTF-8: {exc}") from exc
    return kind, seq, body


class _IntroducerProtocol(asyncio.DatagramProtocol):
    """Server side: answer ANNOUNCE with ACK, GETDIR with
    DIRECTORY.  Malformed datagrams are counted and dropped — an
    introducer must never crash on wire garbage."""

    def __init__(self, owner: "Introducer"):
        self._owner = owner
        self._transport: Optional[
            asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        owner = self._owner
        try:
            kind, seq, body = decode_intro(data)
        except WireFormatError:
            owner.malformed += 1
            return
        if kind == "announce":
            name, host, port = body
            owner.directory[name] = (host, port)
            owner.announcements += 1
            reply = encode_ack(seq, len(owner.directory))
        elif kind == "getdir":
            owner.directory_fetches += 1
            reply = encode_directory(seq, owner.directory)
        else:
            # ACK/DIRECTORY are replies; an introducer receiving one
            # is a confused peer, not an error worth crashing for.
            owner.malformed += 1
            return
        if self._transport is not None:
            self._transport.sendto(reply, addr)


class Introducer:
    """The directory-bootstrap endpoint of one real-network run.

    Owns one UDP socket on ``host`` (ephemeral port by default);
    :attr:`address` is what every node gets told at spawn time, and
    :attr:`directory` accumulates the announced name → address map.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self.directory: Dict[str, Tuple[str, int]] = {}
        self.announcements = 0
        self.directory_fetches = 0
        self.malformed = 0
        self._transport: Optional[
            asyncio.DatagramTransport] = None

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and return the bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _IntroducerProtocol(self),
            local_addr=(self.host, self.port))
        self._transport = transport
        self.host, self.port = \
            transport.get_extra_info("sockname")[:2]
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class _RequestProtocol(asyncio.DatagramProtocol):
    """Client side of one request/reply round-trip: the first
    well-formed reply matching the expected kind and sequence number
    resolves the future; everything else is ignored (stale
    retransmitted replies carry old sequence numbers)."""

    def __init__(self, expect_kind: str, expect_seq: int,
                 future: "asyncio.Future"):
        self._expect = (expect_kind, expect_seq)
        self._future = future

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            kind, seq, body = decode_intro(data)
        except WireFormatError:
            return
        if (kind, seq) == self._expect and \
                not self._future.done():
            self._future.set_result(body)


async def _request(address: Tuple[str, int], payload: bytes,
                   expect_kind: str, expect_seq: int,
                   timeout: float, attempts: int) -> tuple:
    """Send ``payload`` to the introducer and await the matching
    reply, retransmitting on timeout up to ``attempts`` times."""
    loop = asyncio.get_running_loop()
    future: "asyncio.Future" = loop.create_future()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: _RequestProtocol(expect_kind, expect_seq, future),
        remote_addr=address)
    try:
        for attempt in range(attempts):
            transport.sendto(payload)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(future), timeout)
            except asyncio.TimeoutError:
                continue
        raise IntroducerUnreachable(
            f"no {expect_kind} reply from introducer at "
            f"{address[0]}:{address[1]} after {attempts} attempts")
    finally:
        transport.close()


class IntroducerUnreachable(ConnectionError):
    """The introducer did not answer within the attempt budget."""


async def announce(address: Tuple[str, int], seq: int, name: str,
                   host: str, port: int,
                   timeout: float = DEFAULT_TIMEOUT_S,
                   attempts: int = DEFAULT_ATTEMPTS) -> int:
    """Announce ``name`` at ``(host, port)``; returns the directory
    size the introducer acknowledged."""
    body = await _request(address,
                          encode_announce(seq, name, host, port),
                          "ack", seq, timeout, attempts)
    return body[0]


async def fetch_directory(address: Tuple[str, int], seq: int,
                          timeout: float = DEFAULT_TIMEOUT_S,
                          attempts: int = DEFAULT_ATTEMPTS
                          ) -> Dict[str, Tuple[str, int]]:
    """Fetch the announced name → ``(host, port)`` map."""
    body = await _request(address, encode_getdir(seq),
                          "directory", seq, timeout, attempts)
    return body[0]
